#include "core/server.hpp"

#include "core/client.hpp"

#include <algorithm>
#include <string>

#include "mpz/modmath.hpp"
#include "threshold/reshare.hpp"
#include "zkp/batch.hpp"

namespace dblind::core {

namespace {

// Stable metric-label names for received message types.
const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kInit: return "init";
    case MsgType::kCommit: return "commit";
    case MsgType::kReveal: return "reveal";
    case MsgType::kContribute: return "contribute";
    case MsgType::kBlind: return "blind";
    case MsgType::kDone: return "done";
    case MsgType::kSignRequest: return "sign_request";
    case MsgType::kSignCommitReply: return "sign_commit_reply";
    case MsgType::kSignQuorum: return "sign_quorum";
    case MsgType::kSignRevealReply: return "sign_reveal_reply";
    case MsgType::kSignRevealSet: return "sign_reveal_set";
    case MsgType::kSignPartialReply: return "sign_partial_reply";
    case MsgType::kDecryptRequest: return "decrypt_request";
    case MsgType::kDecryptShareReply: return "decrypt_reply";
    case MsgType::kTransferRequest: return "transfer_request";
    case MsgType::kResultRequest: return "result_request";
    case MsgType::kResultReply: return "result_reply";
    case MsgType::kClientDecryptRequest: return "client_decrypt_request";
    case MsgType::kClientDecryptReply: return "client_decrypt_reply";
    case MsgType::kReconfigStart: return "reconfig_start";
    case MsgType::kReshareDeal: return "reshare_deal";
    case MsgType::kReshareSubshare: return "reshare_subshare";
    case MsgType::kReconfigApply: return "reconfig_apply";
    case MsgType::kReconfigEcho: return "reconfig_echo";
    case MsgType::kWrongEpoch: return "wrong_epoch";
    case MsgType::kReconfigPull: return "reconfig_pull";
    case MsgType::kReconfigState: return "reconfig_state";
    case MsgType::kSubsharePull: return "subshare_pull";
  }
  return "other";
}

// Clamps a MsgType to a metrics array index (0 = unknown bucket).
std::size_t type_index(MsgType t) {
  auto i = static_cast<std::size_t>(t);
  return i < ProtocolServer::Metrics::kTypes ? i : 0;
}

// Wire framing: WireKind byte + content.
std::vector<std::uint8_t> frame_signed(const SignedMessage& env) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kServerSigned));
  env.encode(w);
  return w.take();
}

std::vector<std::uint8_t> frame_client(std::vector<std::uint8_t> body) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kClient));
  w.bytes(body);
  return w.take();
}

std::vector<std::uint8_t> frame_service(const ServiceSignedMsg& msg) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kServiceSigned));
  msg.encode(w);
  return w.take();
}

}  // namespace

ProtocolServer::ProtocolServer(SystemConfig cfg, ServerSecrets secrets, ProtocolOptions opts,
                               Behavior behavior)
    : cfg_(std::move(cfg)), secrets_(std::move(secrets)), opts_(std::move(opts)),
      behavior_(behavior), initial_cfg_(cfg_), initial_secrets_(secrets_),
      engine_({opts_.max_inflight_transfers, opts_.engine_shards}),
      watchdog_(opts_.watchdog_deadline) {
  // 0 remembered as "defaulted": installs re-derive f+1 from the NEW config.
  initial_max_coordinators_ = opts_.max_coordinators;
  if (opts_.max_coordinators == 0) opts_.max_coordinators = cfg_.b.cfg.f + 1;
  if (opts_.verify_workers > 0) verify_pool_ = std::make_unique<VerifyPool>(opts_.verify_workers);
  if (opts_.contribution_pool > 0 && is_b())
    pool_ = std::make_unique<ContributionPool>(opts_.contribution_pool);
  // Pin the protocol bases for this key epoch: every exponentiation in
  // encryption and VDE proving targets g (combed by pow_g), y_A, y_B or
  // y_A·y_B (Pr3's base). One table build per modulus, shared const across
  // all servers holding copies of these GroupParams.
  cfg_.params.pin_base(cfg_.a.encryption_key.y());
  cfg_.params.pin_base(cfg_.b.encryption_key.y());
  cfg_.params.pin_base(cfg_.params.mul(cfg_.a.encryption_key.y(), cfg_.b.encryption_key.y()));
}

void ProtocolServer::store_secret(TransferId transfer, elgamal::Ciphertext ea_m) {
  stored_[transfer] = std::move(ea_m);
}

void ProtocolServer::store_secret_at(TransferId transfer, elgamal::Ciphertext ea_m,
                                     net::Time when) {
  pending_store_[transfer] = {std::move(ea_m), when};
}

void ProtocolServer::register_transfer(TransferId transfer) { transfers_.insert(transfer); }

void ProtocolServer::register_transfer_arriving(TransferId transfer, net::Time when) {
  scheduled_arrivals_.emplace_back(when, transfer);
}

std::optional<elgamal::Ciphertext> ProtocolServer::result(TransferId transfer) const {
  auto it = results_.find(transfer);
  if (it == results_.end()) return std::nullopt;
  return it->second;
}

// --- plumbing -----------------------------------------------------------------

void ProtocolServer::send_signed(net::Context& ctx, net::NodeId to, MsgType type,
                                 const std::vector<std::uint8_t>& body) {
  (void)type;  // body already carries the tag; kept for call-site clarity
  SignedMessage env = make_envelope(cfg_, secrets_, body, cfg_epoch_, ctx.rng());
  ctx.send(to, frame_signed(env));
}

void ProtocolServer::broadcast_signed(net::Context& ctx, ServiceRole svc, MsgType type,
                                      const std::vector<std::uint8_t>& body) {
  (void)type;
  SignedMessage env = make_envelope(cfg_, secrets_, body, cfg_epoch_, ctx.rng());
  std::vector<std::uint8_t> framed = frame_signed(env);
  const ServicePublic& s = cfg_.service(svc);
  for (ServerRank r = 1; r <= s.cfg.n; ++r) ctx.send(s.node_of(r), framed);
}

void ProtocolServer::send_service_signed(net::Context& ctx, net::NodeId to,
                                         const ServiceSignedMsg& msg) {
  ctx.send(to, frame_service(msg));
}

std::vector<std::uint8_t> ProtocolServer::signed_frame(net::Context& ctx,
                                                       const std::vector<std::uint8_t>& body) {
  return frame_signed(make_envelope(cfg_, secrets_, body, cfg_epoch_, ctx.rng()));
}

// --- retransmission (chaos layer) ---------------------------------------------
//
// Sender side: every liveness-critical broadcast caches its signed frames in a
// Resend entry and re-sends them on a capped exponential backoff until the
// protocol step it belongs to completes (which cancels the entry) or the
// attempt cap runs out (so the event queue always drains). Safety never
// depends on these timers — they are pure liveness (§2's asynchronous model).

std::uint64_t ProtocolServer::arm_resend(net::Context& ctx, Resend r, net::Time initial_delay,
                                         int max_attempts) {
  if (!opts_.retransmit || r.msgs.empty()) return 0;
  r.delay = initial_delay != 0 ? initial_delay : opts_.retransmit_initial_delay;
  r.max_attempts = max_attempts != 0 ? max_attempts : opts_.retransmit_max_attempts;
  std::uint64_t key = next_resend_++;
  net::Time delay = r.delay;
  resends_[key] = std::move(r);
  ctx.set_timer(delay, kTimerResend | key);
  return key;
}

void ProtocolServer::cancel_resend(std::uint64_t& key) {
  if (key == 0) return;
  resends_.erase(key);  // the pending timer becomes an orphan no-op
  key = 0;
}

void ProtocolServer::cancel_resends_for_transfer(TransferId transfer) {
  for (auto it = resends_.begin(); it != resends_.end();) {
    if (it->second.cancel_on_result && it->second.transfer == transfer) {
      it = resends_.erase(it);
    } else {
      ++it;
    }
  }
  result_pull_keys_.erase(transfer);
}

void ProtocolServer::handle_resend_timer(net::Context& ctx, std::uint64_t key) {
  auto it = resends_.find(key);
  if (it == resends_.end()) return;  // cancelled earlier: orphan timer
  Resend& r = it->second;
  if (r.cancel_on_result && results_.contains(r.transfer)) {
    resends_.erase(it);
    return;
  }
  for (const auto& [to, frame] : r.msgs) resend_frame(ctx, to, frame);
  emit_trace(ctx, obs::EventKind::kRetransmit, nullptr,
             {.transfer = r.transfer, .peer = key, .count = r.msgs.size(),
              .attempt = static_cast<std::uint32_t>(r.attempts),
              .cap = static_cast<std::uint32_t>(r.max_attempts)});
  if (++r.attempts >= r.max_attempts) {
    resends_.erase(it);  // give up; backup coordinators / result pulls take over
    return;
  }
  r.delay = std::min(r.delay * 2, opts_.retransmit_max_delay);
  ctx.set_timer(r.delay, kTimerResend | key);
}

void ProtocolServer::resend_frame(net::Context& ctx, net::NodeId to,
                                  const std::vector<std::uint8_t>& frame) {
  if (frame.empty()) return;
  retransmits_sent_.fetch_add(1, std::memory_order_relaxed);
  ctx.send(to, frame);
}

void ProtocolServer::arm_result_pull(net::Context& ctx, TransferId transfer) {
  if (!is_b() || !opts_.retransmit) return;
  if (results_.contains(transfer) || result_pull_keys_.contains(transfer)) return;
  ResultRequestMsg req;
  req.transfer = transfer;
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kClient));
  w.bytes(encode_body(MsgType::kResultRequest, req));
  std::vector<std::uint8_t> frame = w.take();
  Resend r;
  for (ServerRank rank = 1; rank <= cfg_.b.cfg.n; ++rank) {
    net::NodeId peer = cfg_.b.node_of(rank);
    if (peer == ctx.self()) continue;
    r.msgs.emplace_back(peer, frame);
  }
  r.transfer = transfer;
  r.cancel_on_result = true;
  std::uint64_t key = arm_resend(ctx, std::move(r), opts_.result_pull_delay);
  if (key != 0) result_pull_keys_[transfer] = key;
}

void ProtocolServer::handle_result_reply(net::Context& ctx, std::span<const std::uint8_t> body) {
  if (!is_b()) return;
  ResultReplyMsg msg;
  try {
    msg = decode_as<ResultReplyMsg>(MsgType::kResultReply, body);
  } catch (const CodecError&) {
    return;
  }
  auto done = check_done(cfg_, msg.done);
  if (!done || done->id.transfer != msg.transfer) return;
  record_done(&ctx, *done, msg.done);
}

std::uint32_t ProtocolServer::next_epoch_of(TransferId transfer) const {
  auto it = next_epoch_.find(transfer);
  return it == next_epoch_.end() ? 0 : it->second;
}

void ProtocolServer::on_start(net::Context& ctx) {
  resolve_metrics(ctx);
  metrics_.config_epoch.set(cfg_epoch_);
  // Service A: schedule deferred secret arrivals.
  for (const auto& [transfer, pair] : pending_store_) {
    ctx.set_timer(pair.second, kTimerStoreSecret | transfer);
  }
  // Arm scheduled reconfiguration rounds. Kept across restore() — the timer
  // handler skips any spec whose epoch is already installed, so a stale
  // re-arm after a crash-restart is harmless.
  for (std::size_t i = 0; i < scheduled_reconfigs_.size(); ++i) {
    ctx.set_timer(scheduled_reconfigs_[i].first, kTimerReconfig | i);
  }
  if (restored_) {
    restored_ = false;
    // A restarted server may have slept through installs, leaving it with a
    // stale share and roster that the epoch gate would only correct once
    // epoch-stamped traffic happens to arrive. Proactively pull the install
    // certificate chain from every epoch-0 peer instead (a no-op reply if
    // nothing was installed); the pulls ride a short capped backoff so a
    // lossy link cannot strand the laggard at a dead epoch.
    ReconfigPullMsg msg;
    msg.epoch = cfg_epoch_;
    std::vector<std::uint8_t> frame = frame_client(encode_body(MsgType::kReconfigPull, msg));
    Resend r;
    for (const ServicePublic* svc : {&cfg_.a, &cfg_.b}) {
      for (ServerRank rk = 1; rk <= svc->cfg.n; ++rk) {
        net::NodeId node = svc->node_of(rk);
        if (node != ctx.self()) r.msgs.emplace_back(node, frame);
      }
    }
    for (const auto& [to, f] : r.msgs) ctx.send(to, f);
    arm_resend(ctx, std::move(r), opts_.result_pull_delay, 5);
  }
  if (is_b()) {
    // Dedicated prng for contribution bundles (offline/online split). Forked
    // at a fixed point of every incarnation, in pool-on and pool-off modes
    // alike, so the bundle stream — and therefore every wire message built
    // from it — is identical across modes for a given seed. Refill timers
    // draw ONLY from this fork, never from ctx.rng().
    offline_prng_.emplace(ctx.rng().fork("offline-contrib"));
    if (opts_.per_transfer_rng) {
      // Root key for per-instance contribution streams. One fork per
      // incarnation, exactly like the offline prng, so a restarted server
      // never replays the ρ of an instance it may already have committed to.
      mpz::Prng root = ctx.rng().fork("transfer-rng-root");
      hash::Digest key{};
      root.fill(key);
      instance_rng_root_ = key;
    }
    if (pool_ != nullptr && opts_.pool_prefill) {
      obs::ScopedCounterDelta off(cfg_.params.mont_mul_cell(),
                                  metrics_.contrib_mont_muls_offline);
      while (!pool_->full()) {
        ContributionBundle b = make_contribution_bundle(cfg_, next_bundle_id_++, *offline_prng_);
        metrics_.pool_refills.inc();
        emit_trace(ctx, obs::EventKind::kPoolRefill, nullptr,
                   {.peer = b.id, .count = pool_->size() + 1});
        pool_->push(std::move(b));
      }
      metrics_.pool_depth.set(pool_->size());
    }
    arm_pool_refill(ctx);
    // Coordinator scheduling (§4.1): rank 1 is the designated coordinator;
    // ranks 2..f+1 are delayed backups. After a restart, completed transfers
    // (restored from the durable done messages) are skipped, and the epoch
    // continues past anything this server may have announced pre-crash.
    // Standby servers (rank 0) hold no roster slot and drive nothing. Every
    // start now passes through the admission engine; with the default
    // unlimited cap the engine admits everything immediately.
    for (TransferId t : transfers_) schedule_coordinator(ctx, t);
    // Open-loop arrivals become registered transfers at their virtual time.
    for (std::size_t i = 0; i < scheduled_arrivals_.size(); ++i) {
      ctx.set_timer(scheduled_arrivals_[i].first, kTimerTransferArrival | i);
    }
    // Recovery: periodically pull missing results from peer B servers (no-op
    // for completed transfers; cancelled as soon as a result arrives).
    for (TransferId t : transfers_) arm_result_pull(ctx, t);
    // Stall watchdog: track every registered-but-unfinished transfer from the
    // moment this incarnation starts (later arrivals and epoch re-admissions
    // self-arm through the emit_trace hook).
    if (watchdog_.enabled()) {
      for (TransferId t : transfers_) {
        if (!results_.contains(t)) watchdog_.arm(t, ctx.now());
      }
      arm_watchdog_timer(ctx);
    }
    // Step flexibility: pre-compute the contribution (and its VDE proof) for
    // the designated coordinator's expected instance before any init arrives.
    if (active() && opts_.precompute_contributions) {
      for (TransferId t : transfers_) {
        (void)contributor_state(ctx, InstanceId{t, 1, 0});
      }
    }
  }
}

void ProtocolServer::on_timer(net::Context& ctx, std::uint64_t token) {
  auto t0 = std::chrono::steady_clock::now();
  std::uint64_t kind = token & (0xffull << 56);
  std::uint64_t arg = token & ~(0xffull << 56);
  if (kind == kTimerCoordinator) {
    TransferId t = arg;
    // Engine gate: the timer was armed at admission, but an epoch install may
    // have demoted the transfer back to the queue since — a demoted transfer
    // restarts via a fresh admission (and a fresh timer), never a stale one.
    if (active() && !results_.contains(t) &&
        engine_.phase(t) == TransferPhase::kActive) {
      start_coordinator(ctx, t, next_epoch_of(t));
    }
  } else if (kind == kTimerTransferArrival) {
    if (arg < scheduled_arrivals_.size()) {
      TransferId t = scheduled_arrivals_[arg].second;
      // Same path as a client kTransferRequest landing now.
      if (transfers_.insert(t).second) {
        schedule_coordinator(ctx, t);
        arm_result_pull(ctx, t);
      }
    }
  } else if (kind == kTimerReconfig) {
    if (arg < scheduled_reconfigs_.size()) {
      const ReconfigSpec& spec = scheduled_reconfigs_[arg].second;
      if (active() && cfg_epoch_ < spec.epoch) start_reconfig_round(ctx, spec);
    }
  } else if (kind == kTimerResend) {
    handle_resend_timer(ctx, arg);
  } else if (kind == kTimerResponder) {
    auto it = responder_timer_ids_.find(arg);
    if (it != responder_timer_ids_.end()) {
      InstanceId id = it->second;
      if (!seen_blind_.contains(id)) start_responder(ctx, id);
    }
  } else if (kind == kTimerSignRetry) {
    sign_session_retry(ctx, arg);
  } else if (kind == kTimerStoreSecret) {
    TransferId t = arg;
    auto it = pending_store_.find(t);
    if (it != pending_store_.end()) {
      stored_[t] = it->second.first;
      pending_store_.erase(it);
      // Replay blind messages that arrived before the secret existed.
      std::vector<ServiceSignedMsg> parked = std::move(parked_blinds_);
      parked_blinds_.clear();
      for (ServiceSignedMsg& m : parked) handle_blind(ctx, m);
    }
  } else if (kind == kTimerVerifyDrain) {
    drain_verifies(ctx);
  } else if (kind == kTimerPoolRefill) {
    pool_refill_tick(ctx);
  } else if (kind == kTimerWatchdog) {
    watchdog_tick(ctx);
  }
  cpu_seconds_ += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void ProtocolServer::on_message(net::Context& ctx, net::NodeId from,
                                std::span<const std::uint8_t> bytes) {
  if (behavior_ == Behavior::kSilent) return;
  auto t0 = std::chrono::steady_clock::now();
  MsgType rx_type{};
  try {
    Reader r(bytes);
    auto kind = static_cast<WireKind>(r.u8());
    if (kind == WireKind::kServerSigned) {
      SignedMessage env = SignedMessage::decode(r);
      r.expect_done();
      rx_type = peek_type(env.body);
      ++rx_counts_[rx_type];
      const std::size_t ti = type_index(rx_type);
      metrics_.rx_msgs[ti].inc();
      metrics_.rx_bytes[ti].inc(bytes.size());
      obs::ScopedCounterDelta mont(cfg_.params.mont_mul_cell(), metrics_.mont_muls[ti]);
      // Epoch gate (I6 sender side): every server-signed message is stamped
      // with — and signature-bound to — its sender's config epoch. A stale
      // message gets a typed kWrongEpoch so the sender can catch up and
      // retransmit under the new configuration; a FUTURE stamp means WE are
      // behind — probe the sender for the install chain. Either way the
      // message itself is dropped: handlers only ever see same-epoch traffic.
      if (env.cfg_epoch != cfg_epoch_) {
        if (env.cfg_epoch < cfg_epoch_) {
          metrics_.reconfig_stale_rejects.inc();
          maybe_send_wrong_epoch(ctx, from, env);
        } else {
          send_reconfig_pull(ctx, from);
        }
      } else {
        switch (rx_type) {
          case MsgType::kInit: handle_init(ctx, env); break;
          case MsgType::kCommit: handle_commit(ctx, env); break;
          case MsgType::kReveal: handle_reveal(ctx, env); break;
          case MsgType::kContribute: handle_contribute(ctx, env); break;
          case MsgType::kSignRequest: handle_sign_request(ctx, env); break;
          case MsgType::kSignCommitReply: handle_sign_commit_reply(ctx, env); break;
          case MsgType::kSignQuorum: handle_sign_quorum(ctx, env); break;
          case MsgType::kSignRevealReply: handle_sign_reveal_reply(ctx, env); break;
          case MsgType::kSignRevealSet: handle_sign_reveal_set(ctx, env); break;
          case MsgType::kSignPartialReply: handle_sign_partial_reply(ctx, env); break;
          case MsgType::kDecryptRequest: handle_decrypt_request(ctx, env); break;
          case MsgType::kDecryptShareReply: handle_decrypt_share_reply(ctx, env); break;
          case MsgType::kReconfigStart: handle_reconfig_start(ctx, env); break;
          case MsgType::kReshareDeal: handle_reshare_deal(ctx, env); break;
          case MsgType::kReconfigApply: handle_reconfig_apply(ctx, env); break;
          case MsgType::kReconfigEcho: handle_reconfig_echo(ctx, env); break;
          default: break;  // not a server-signed kind — ignore
        }
      }
    } else if (kind == WireKind::kServiceSigned) {
      ServiceSignedMsg msg = ServiceSignedMsg::decode(r);
      r.expect_done();
      rx_type = peek_type(msg.body);
      ++rx_counts_[rx_type];
      const std::size_t ti = type_index(rx_type);
      metrics_.rx_msgs[ti].inc();
      metrics_.rx_bytes[ti].inc(bytes.size());
      obs::ScopedCounterDelta mont(cfg_.params.mont_mul_cell(), metrics_.mont_muls[ti]);
      switch (rx_type) {
        case MsgType::kBlind: handle_blind(ctx, msg); break;
        case MsgType::kDone: handle_done(ctx, msg); break;
        default: break;
      }
    } else if (kind == WireKind::kClient) {
      std::vector<std::uint8_t> body = r.bytes();
      r.expect_done();
      rx_type = peek_type(body);
      ++rx_counts_[rx_type];
      const std::size_t ti = type_index(rx_type);
      metrics_.rx_msgs[ti].inc();
      metrics_.rx_bytes[ti].inc(bytes.size());
      obs::ScopedCounterDelta mont(cfg_.params.mont_mul_cell(), metrics_.mont_muls[ti]);
      switch (rx_type) {
        case MsgType::kTransferRequest: handle_transfer_request(ctx, from, body); break;
        case MsgType::kResultRequest: handle_result_request(ctx, from, body); break;
        case MsgType::kResultReply: handle_result_reply(ctx, body); break;
        case MsgType::kClientDecryptRequest:
          handle_client_decrypt_request(ctx, from, body);
          break;
        case MsgType::kReshareSubshare: handle_reshare_subshare(ctx, body); break;
        case MsgType::kWrongEpoch: handle_wrong_epoch(ctx, from, body); break;
        case MsgType::kReconfigPull: handle_reconfig_pull(ctx, from, body); break;
        case MsgType::kReconfigState: handle_reconfig_state(ctx, from, body); break;
        case MsgType::kSubsharePull: handle_subshare_pull(ctx, from, body); break;
        default: break;
      }
    }
  } catch (const CodecError&) {
    // Malformed message: indistinguishable from loss (§4.2.3).
  }
  const auto wall = std::chrono::steady_clock::now() - t0;
  cpu_seconds_ += std::chrono::duration<double>(wall).count();
  metrics_.handler_wall_us[type_index(rx_type)].observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(wall).count()));
}

// --- contributor role (B) --------------------------------------------------------

// Hands out the next contribution bundle in FIFO order. Pool hit: drain the
// precomputed bundle (zero group exponentiations on this path). Pool empty or
// pooling disabled: fall back to computing a bundle inline from the same
// dedicated offline prng — consumption order is identical either way, so the
// k-th bundle a server ever uses has the same randomness regardless of pool
// configuration (the byte-identity invariant the pool tests assert).
ContributionBundle ProtocolServer::obtain_bundle(net::Context& ctx, const InstanceId& id) {
  if (opts_.per_transfer_rng && instance_rng_root_.has_value()) {
    // Per-instance keyed stream: the bundle depends only on the incarnation
    // root and this instance's public coordinates, never on how many other
    // transfers were served first. This is what makes a transfer's wire bytes
    // interleaving-independent (the concurrent-vs-sequential equivalence
    // panel). The pool is bypassed — a pooled bundle cannot be attributed to
    // an instance before the instance exists.
    hash::Sha256 h;
    h.update(std::span<const std::uint8_t>(instance_rng_root_->data(),
                                           instance_rng_root_->size()));
    std::array<std::uint8_t, 20> coords{};
    for (int i = 0; i < 8; ++i) coords[i] = static_cast<std::uint8_t>(id.transfer >> (8 * i));
    for (int i = 0; i < 4; ++i)
      coords[8 + i] = static_cast<std::uint8_t>(id.coordinator >> (8 * i));
    for (int i = 0; i < 4; ++i) coords[12 + i] = static_cast<std::uint8_t>(id.epoch >> (8 * i));
    for (int i = 0; i < 4; ++i) coords[16 + i] = static_cast<std::uint8_t>(cfg_epoch_ >> (8 * i));
    h.update(std::span<const std::uint8_t>(coords.data(), coords.size()));
    mpz::Prng instance_prng(h.finish());
    return make_contribution_bundle(cfg_, next_bundle_id_++, instance_prng);
  }
  if (pool_ != nullptr) {
    if (auto b = pool_->take()) {
      metrics_.pool_drains.inc();
      metrics_.pool_depth.set(pool_->size());
      emit_trace(ctx, obs::EventKind::kPoolDrain, &id, {.peer = b->id, .count = pool_->size()});
      arm_pool_refill(ctx);
      return std::move(*b);
    }
    metrics_.pool_fallbacks.inc();
    arm_pool_refill(ctx);
  }
  ContributionBundle b = make_contribution_bundle(cfg_, next_bundle_id_++, *offline_prng_);
  if (pool_ != nullptr) {
    // Pool configured but dry: record the fallback drain so the single-use
    // checker still sees every consumed bundle id exactly once.
    emit_trace(ctx, obs::EventKind::kPoolDrain, &id, {.peer = b.id, .subject = 1, .count = 0});
  }
  return b;
}

void ProtocolServer::arm_pool_refill(net::Context& ctx) {
  if (pool_ == nullptr || pool_timer_armed_ || pool_->full()) return;
  pool_timer_armed_ = true;
  ctx.set_timer(opts_.pool_refill_delay, kTimerPoolRefill);
}

void ProtocolServer::pool_refill_tick(net::Context& ctx) {
  pool_timer_armed_ = false;
  if (pool_ == nullptr || pool_->full() || !offline_prng_.has_value()) return;
  obs::ScopedCounterDelta off(cfg_.params.mont_mul_cell(), metrics_.contrib_mont_muls_offline);
  ContributionBundle b = make_contribution_bundle(cfg_, next_bundle_id_++, *offline_prng_);
  metrics_.pool_refills.inc();
  emit_trace(ctx, obs::EventKind::kPoolRefill, nullptr, {.peer = b.id, .count = pool_->size() + 1});
  pool_->push(std::move(b));
  metrics_.pool_depth.set(pool_->size());
  arm_pool_refill(ctx);
}

ProtocolServer::ContributorState& ProtocolServer::contributor_state(net::Context& ctx,
                                                                    const InstanceId& id) {
  auto it = contributor_.find(id);
  if (it != contributor_.end()) return it->second;

  ContributorState st;
  const group::GroupParams& gp = cfg_.params;
  ContributionBundle b = obtain_bundle(ctx, id);
  st.bundle = b.id;
  st.rho = std::move(b.rho);
  st.r1 = std::move(b.r1);
  st.r2 = std::move(b.r2);
  st.contribution.ea = std::move(b.ea);
  st.eb_good = std::move(b.eb);
  st.vde_offline = std::move(b.vde);
  if (behavior_ == Behavior::kInconsistentContribution) {
    // §4.2.2 attack: E_B encrypts a different plaintext (ρ' != ρ). No valid
    // VDE proof exists for the pair; handle_reveal attaches a proof computed
    // for the consistent shadow pair, so the mismatch is only detectable
    // through VDE verification, not through message shape.
    mpz::Bigint rho_bad = gp.mul(st.rho, gp.g());
    st.contribution.eb = cfg_.b.encryption_key.encrypt_with_nonce(rho_bad, st.r2);
  } else {
    st.contribution.eb = st.eb_good;
  }
  contributor_[id] = std::move(st);
  return contributor_[id];
}

void ProtocolServer::handle_init(net::Context& ctx, const SignedMessage& env) {
  if (!is_b() || !active()) return;
  auto init = check_init(cfg_, env);
  if (!init) return;
  // Mont-muls spent while serving the request are the "online" cost; with a
  // warm pool the bundle here is precomputed and this stays near zero.
  obs::ScopedCounterDelta online(cfg_.params.mont_mul_cell(), metrics_.contrib_mont_muls_online);
  ContributorState& st = contributor_state(ctx, init->id);
  if (st.committed) {
    // Duplicate init (retransmission or network duplication): answer with the
    // exact bytes we committed to the first time.
    resend_frame(ctx, cfg_.b.node_of(init->id.coordinator), st.commit_frame);
    return;
  }
  st.committed = true;

  CommitMsg commit;
  commit.id = init->id;
  commit.server = secrets_.rank;
  commit.commitment = st.contribution.commitment_digest();
  st.commit_frame = signed_frame(ctx, encode_body(MsgType::kCommit, commit));
  ctx.send(cfg_.b.node_of(init->id.coordinator), st.commit_frame);
  emit_trace(ctx, obs::EventKind::kCommitSent, &init->id,
             {.peer = cfg_.b.node_of(init->id.coordinator)});
}

void ProtocolServer::handle_reveal(net::Context& ctx, const SignedMessage& env) {
  if (!is_b() || !active()) return;
  auto reveal = check_reveal(cfg_, env);
  if (!reveal) return;
  auto it = contributor_.find(reveal->id);
  if (it == contributor_.end()) return;  // never committed for this instance
  ContributorState& st = it->second;
  // Respond to at most one reveal per instance (see validity.hpp header on
  // why this matters for Randomness-Confidentiality). A duplicate of the
  // SAME reveal gets the cached contribute frame — never a re-randomized one.
  if (st.contributed) {
    if (env == st.answered_reveal)
      resend_frame(ctx, cfg_.b.node_of(reveal->id.coordinator), st.contribute_frame);
    return;
  }
  if (behavior_ == Behavior::kWithholdContribution) return;
  // Only respond if this reveal contains our commitment (step 4).
  bool mine = false;
  for (const SignedMessage& commit_env : reveal->commits) {
    try {
      CommitMsg c = decode_as<CommitMsg>(MsgType::kCommit, commit_env.body);
      if (c.server == secrets_.rank &&
          c.commitment == st.contribution.commitment_digest()) {
        mine = true;
        break;
      }
    } catch (const CodecError&) {
    }
  }
  if (!mine) return;
  st.contributed = true;
  st.answered_reveal = env;

  obs::ScopedCounterDelta online(cfg_.params.mont_mul_cell(), metrics_.contrib_mont_muls_online);
  ContributeMsg msg;
  msg.id = reveal->id;
  msg.server = secrets_.rank;
  msg.reveal = env;
  msg.contribution = st.contribution;
  // Online phase of the Fiat-Shamir split: the announcements (and, for the
  // kInconsistentContribution attack, the consistent shadow pair eb_good the
  // proof is honestly generated over) were fixed when the bundle was built;
  // here we only bind the challenge to the transcript and compute responses —
  // cheap modular arithmetic, zero group exponentiations.
  msg.vde = zkp::vde_prove_online(cfg_.a.encryption_key, st.contribution.ea, st.r1,
                                  cfg_.b.encryption_key, st.eb_good, st.r2, st.vde_offline,
                                  vde_context(msg.id, msg.server));
  st.contribute_frame = signed_frame(ctx, encode_body(MsgType::kContribute, msg));
  ctx.send(cfg_.b.node_of(reveal->id.coordinator), st.contribute_frame);
  emit_trace(ctx, obs::EventKind::kContributeSent, &reveal->id,
             {.peer = cfg_.b.node_of(reveal->id.coordinator)});
}

// --- coordinator role (B) ----------------------------------------------------------

void ProtocolServer::start_coordinator(net::Context& ctx, TransferId transfer,
                                       std::uint32_t epoch) {
  InstanceId id{transfer, secrets_.rank, epoch};
  if (coordinator_.contains(id)) return;
  // Durable epoch bump: a restarted coordinator must not reuse an epoch it
  // may already have announced with a different (lost) contribution set.
  next_epoch_[transfer] = std::max(next_epoch_of(transfer), epoch + 1);
  CoordinatorState st;
  st.id = id;
  st.t_start = ctx.now();
  coordinator_[id] = std::move(st);
  emit_trace(ctx, obs::EventKind::kEpochStart, &id);

  if (behavior_ == Behavior::kBogusBlindCoordinator) {
    // §4.2.3 attack: skip the protocol and try to get B to sign a fabricated
    // blinding pair for an adversary-known ρ̂.
    mpz::Bigint rho_hat = cfg_.params.random_element(ctx.rng());
    BlindPayload payload;
    payload.id = id;
    payload.blinded.ea = cfg_.a.encryption_key.encrypt(rho_hat, ctx.rng());
    payload.blinded.eb = cfg_.b.encryption_key.encrypt(rho_hat, ctx.rng());
    Writer w;
    BlindEvidence{}.encode(w);  // empty evidence
    start_sign_session(ctx, SignPurpose::kBlind, encode_body(MsgType::kBlind, payload), w.take());
    return;
  }

  InitMsg init{id};
  std::vector<std::uint8_t> framed = signed_frame(ctx, encode_body(MsgType::kInit, init));
  Resend r;
  for (ServerRank rank = 1; rank <= cfg_.b.cfg.n; ++rank) {
    ctx.send(cfg_.b.node_of(rank), framed);
    r.msgs.emplace_back(cfg_.b.node_of(rank), framed);
  }
  r.transfer = transfer;
  r.cancel_on_result = true;
  coordinator_[id].init_resend = arm_resend(ctx, std::move(r));
}

void ProtocolServer::handle_commit(net::Context& ctx, const SignedMessage& env) {
  if (!is_b()) return;
  auto commit = check_commit(cfg_, env);
  if (!commit) return;
  auto it = coordinator_.find(commit->id);
  if (it == coordinator_.end()) return;
  CoordinatorState& st = it->second;
  if (st.revealed) return;
  if (st.commits.emplace(commit->server, env).second) {
    emit_trace(ctx, obs::EventKind::kCommitAccepted, &st.id,
               {.peer = commit->server, .count = st.commits.size()});
  }

  const std::size_t need = 2 * cfg_.b.cfg.f + 1;
  if (st.commits.size() < need) return;
  st.revealed = true;
  st.t_reveal = ctx.now();
  metrics_.phase_commit_us.observe(st.t_reveal - st.t_start);
  emit_trace(ctx, obs::EventKind::kRevealSent, &st.id, {.count = need});

  RevealMsg reveal;
  reveal.id = st.id;
  for (const auto& [rank, commit_env] : st.commits) {
    if (reveal.commits.size() == need) break;
    reveal.commits.push_back(commit_env);
  }
  std::vector<std::uint8_t> body = encode_body(MsgType::kReveal, reveal);
  SignedMessage reveal_env = make_envelope(cfg_, secrets_, body, cfg_epoch_, ctx.rng());
  st.reveal_env = reveal_env;
  std::vector<std::uint8_t> framed = frame_signed(reveal_env);
  cancel_resend(st.init_resend);  // commit round complete
  Resend rs;
  for (ServerRank r = 1; r <= cfg_.b.cfg.n; ++r) {
    ctx.send(cfg_.b.node_of(r), framed);
    rs.msgs.emplace_back(cfg_.b.node_of(r), framed);
  }
  rs.transfer = st.id.transfer;
  rs.cancel_on_result = true;
  st.reveal_resend = arm_resend(ctx, std::move(rs));
}

void ProtocolServer::handle_contribute(net::Context& ctx, const SignedMessage& env) {
  if (!is_b()) return;
  if (verify_pool_) {
    // Off-handler verification: queue the message, let a worker check it, and
    // apply results in arrival order at the drain timer. The PRNG for batch
    // randomizers is forked here, on the handler thread, so workers never
    // share the node's rng.
    pending_verifies_.push_back({env, std::nullopt, {}});
    PendingVerify& pv = pending_verifies_.back();
    std::shared_ptr<std::packaged_task<void()>> task;
    if (opts_.batch_verify) {
      // Cross-transfer mode: the worker runs only the structural + signature
      // phase (which needs no randomizers); every surviving VDE proof is
      // folded into ONE combined RLC pass at the drain, across however many
      // transfers are pending (drain_verifies_cross).
      task = std::make_shared<std::packaged_task<void()>>(
          [this, &pv] { pv.result = precheck_contribute_batch(cfg_, pv.env); });
    } else {
      task = std::make_shared<std::packaged_task<void()>>(
          [this, &pv] { pv.result = check_contribute(cfg_, pv.env); });
    }
    pv.done = task->get_future();
    verify_pool_->submit([task] { (*task)(); });
    metrics_.verify_queue_depth.observe(pending_verifies_.size());
    ctx.set_timer(0, kTimerVerifyDrain);
    return;
  }
  auto contribute = opts_.batch_verify ? check_contribute_batch(cfg_, env, ctx.rng())
                                       : check_contribute(cfg_, env);
  if (!contribute) {
    record_contribute_verdict(ctx, env, nullptr);
    return;
  }
  record_contribute_verdict(ctx, env, &*contribute);
  apply_contribute(ctx, env, *contribute);
}

// Verify-outcome bookkeeping for a contribute message (shared by the inline
// and worker-pool paths). `contribute` is null when verification rejected the
// message; env.signer then identifies the culprit node.
void ProtocolServer::record_contribute_verdict(net::Context& ctx, const SignedMessage& env,
                                               const ContributeMsg* contribute,
                                               const ContributeMsg* rejected) {
  if (contribute != nullptr) {
    metrics_.verify_pass.inc();
    emit_trace(ctx, obs::EventKind::kVerifyPass, &contribute->id,
               {.peer = contribute->server,
                .subject = static_cast<std::uint32_t>(MsgType::kContribute)});
  } else {
    metrics_.verify_fail.inc();
    if (opts_.batch_verify) metrics_.batch_fallbacks.inc();
    // With a decoded-but-rejected message in hand (cross-transfer drain), the
    // failure is attributed to the exact (transfer, rank) it came from; the
    // legacy paths never decoded a rejected message and keep transfer = 0.
    emit_trace(ctx, obs::EventKind::kVerifyFail, nullptr,
               {.transfer = rejected != nullptr ? rejected->id.transfer : 0,
                .peer = env.signer,
                .subject = static_cast<std::uint32_t>(MsgType::kContribute)});
  }
}

void ProtocolServer::apply_contribute(net::Context& ctx, const SignedMessage& env,
                                      const ContributeMsg& contribute) {
  auto it = coordinator_.find(contribute.id);
  if (it == coordinator_.end()) return;
  CoordinatorState& st = it->second;
  if (st.signing || st.sent_blind) return;
  // Accept only contributions responding to OUR reveal (the same-reveal
  // evidence rule is enforced again by every signing member).
  if (!(contribute.reveal == st.reveal_env)) return;
  st.contributes.emplace(contribute.server, env);
  coordinator_try_finish(ctx, st);
}

void ProtocolServer::drain_verifies(net::Context& ctx) {
  if (opts_.batch_verify) {
    drain_verifies_cross(ctx);
    return;
  }
  std::uint64_t drained = 0;
  while (!pending_verifies_.empty()) {
    PendingVerify& pv = pending_verifies_.front();
    pv.done.wait();  // blocks only until THIS message's verdict is in
    ++drained;
    record_contribute_verdict(ctx, pv.env, pv.result ? &*pv.result : nullptr);
    if (pv.result) apply_contribute(ctx, pv.env, *pv.result);
    pending_verifies_.pop_front();
  }
  if (drained != 0) metrics_.verify_drain_batch.observe(drained);
}

void ProtocolServer::drain_verifies_cross(net::Context& ctx) {
  if (pending_verifies_.empty()) return;
  // Wait for every queued precheck: the combined pass needs the whole drain's
  // survivors, and the zero-delay drain timer fires once per enqueue burst.
  for (PendingVerify& pv : pending_verifies_) {
    if (pv.done.valid()) pv.done.wait();
  }
  // Fold the VDE equations of every prechecked message — regardless of which
  // transfer or coordinator it belongs to — into one tagged cross batch:
  // exactly one random-linear-combination verification per drain. Tags are
  // queue positions, so a failing tag maps back to its message (and through
  // it to the culprit's transfer and rank).
  zkp::CpCrossBatch batch;
  for (std::size_t i = 0; i < pending_verifies_.size(); ++i) {
    const PendingVerify& pv = pending_verifies_[i];
    if (!pv.result) continue;  // structural/signature reject: no equations
    std::vector<zkp::CpBatchItem> eqs;
    if (!zkp::vde_lower_to_cp(cfg_.params, contribute_vde_item(cfg_, *pv.result), eqs)) {
      batch.poison(i);  // structurally invalid proof: fails without a pass
      continue;
    }
    batch.add(i, std::span<const zkp::CpBatchItem>(eqs));
  }
  mpz::Prng prng = ctx.rng().fork("cross-drain");
  zkp::CrossBatchResult verdict = batch.verify(cfg_.params, prng);
  std::set<std::uint64_t> bad(verdict.bad_tags.begin(), verdict.bad_tags.end());
  metrics_.cross_drain_msgs.observe(pending_verifies_.size());
  metrics_.cross_drain_equations.observe(batch.equations());
  emit_trace(ctx, obs::EventKind::kBatchDrain, nullptr,
             {.peer = batch.equations(), .count = pending_verifies_.size()});
  // Apply verdicts in strict message-arrival order — handler-visible state
  // evolves exactly as if each message had been verified inline.
  metrics_.verify_drain_batch.observe(pending_verifies_.size());
  for (std::size_t i = 0; i < pending_verifies_.size(); ++i) {
    PendingVerify& pv = pending_verifies_[i];
    if (pv.result && !bad.contains(i)) {
      record_contribute_verdict(ctx, pv.env, &*pv.result);
      apply_contribute(ctx, pv.env, *pv.result);
    } else {
      record_contribute_verdict(ctx, pv.env, nullptr, pv.result ? &*pv.result : nullptr);
    }
  }
  pending_verifies_.clear();
}

void ProtocolServer::coordinator_try_finish(net::Context& ctx, CoordinatorState& st) {
  const std::size_t quorum = cfg_.b.cfg.quorum();
  if (st.contributes.size() < quorum) return;
  cancel_resend(st.reveal_resend);  // contribute round complete

  if (behavior_ == Behavior::kAdaptiveCancelCoordinator) {
    attack_coordinator_step(ctx, st);
    return;
  }

  BlindEvidence evidence;
  std::vector<elgamal::Ciphertext> eas, ebs;
  for (const auto& [rank, env] : st.contributes) {
    if (evidence.contributes.size() == quorum) break;
    evidence.contributes.push_back(env);
    ContributeMsg c = decode_as<ContributeMsg>(MsgType::kContribute, env.body);
    // Transfer-isolation audit record (invariant I8/T8): every contribution
    // cited by this instance's evidence names the transfer it was produced
    // for. With the per-transfer state machines this matches st.id.transfer
    // by construction; a cross-transfer contamination bug in the concurrent
    // drain would surface here as a mismatch.
    emit_trace(ctx, obs::EventKind::kContributeCited, &st.id,
               {.peer = c.server, .count = c.id.transfer});
    eas.push_back(c.contribution.ea);
    ebs.push_back(c.contribution.eb);
  }
  auto ea = cfg_.a.encryption_key.product(eas);
  auto eb = cfg_.b.encryption_key.product(ebs);
  if (!ea || !eb) {
    // Degenerate combined nonce (§3 side condition): request new values by
    // starting a fresh epoch.
    start_coordinator(ctx, st.id.transfer, st.id.epoch + 1);
    return;
  }
  st.signing = true;
  st.t_sign = ctx.now();
  metrics_.phase_contribute_us.observe(st.t_sign - st.t_reveal);
  emit_trace(ctx, obs::EventKind::kBlindSignBegin, &st.id, {.count = quorum});

  BlindPayload payload;
  payload.id = st.id;
  payload.blinded.ea = *ea;
  payload.blinded.eb = *eb;
  Writer w;
  evidence.encode(w);
  start_sign_session(ctx, SignPurpose::kBlind, encode_body(MsgType::kBlind, payload), w.take());
}

// --- Byzantine coordinator attacks ---------------------------------------------------

void ProtocolServer::attack_coordinator_step(net::Context& ctx, CoordinatorState& st) {
  if (st.signing) return;
  st.signing = true;
  // The §4.2.1 adaptive attack, mounted against the hardened protocol: the
  // compromised coordinator has seen f+1 honest contributions (responding to
  // its reveal R1). It now crafts a contribution that cancels all but the
  // adversary-chosen ρ̂ and tries to splice it into the evidence. Its own
  // commitment was not in R1, so its contribute message must embed a second
  // reveal R2 — violating the same-reveal rule that honest signing members
  // enforce. The sign request below is therefore rejected by every honest
  // member; attack_successes() stays 0 and liveness falls to the honest
  // backup coordinators.
  const std::size_t quorum = cfg_.b.cfg.quorum();
  const group::GroupParams& gp = cfg_.params;

  std::vector<elgamal::Ciphertext> eas, ebs;
  BlindEvidence evidence;
  for (const auto& [rank, env] : st.contributes) {
    if (evidence.contributes.size() == quorum - 1) break;
    evidence.contributes.push_back(env);
    ContributeMsg c = decode_as<ContributeMsg>(MsgType::kContribute, env.body);
    eas.push_back(c.contribution.ea);
    ebs.push_back(c.contribution.eb);
  }

  // Craft the canceling contribution: E(ρ̂) × Π E(ρ_i)^{-1}.
  mpz::Bigint rho_hat = gp.random_element(ctx.rng());
  elgamal::Ciphertext cancel_ea = cfg_.a.encryption_key.encrypt(rho_hat, ctx.rng());
  elgamal::Ciphertext cancel_eb = cfg_.b.encryption_key.encrypt(rho_hat, ctx.rng());
  for (std::size_t i = 0; i < eas.size(); ++i) {
    auto ma = cfg_.a.encryption_key.multiply(cancel_ea, cfg_.a.encryption_key.inverse(eas[i]));
    auto mb = cfg_.b.encryption_key.multiply(cancel_eb, cfg_.b.encryption_key.inverse(ebs[i]));
    if (!ma || !mb) return;  // negligible
    cancel_ea = *ma;
    cancel_eb = *mb;
  }

  // Build the attacker's contribute message. It cannot produce a valid VDE
  // proof (it does not know the nonces of the malleated ciphertexts), and
  // its commitment appears only in a freshly-fabricated reveal R2.
  Contribution cancel{cancel_ea, cancel_eb};
  CommitMsg my_commit;
  my_commit.id = st.id;
  my_commit.server = secrets_.rank;
  my_commit.commitment = cancel.commitment_digest();
  SignedMessage my_commit_env = make_envelope(cfg_, secrets_, encode_body(MsgType::kCommit, my_commit),
                                              cfg_epoch_, ctx.rng());

  RevealMsg r2;
  r2.id = st.id;
  r2.commits.push_back(my_commit_env);
  for (const auto& [rank, commit_env] : st.commits) {
    if (r2.commits.size() == 2 * cfg_.b.cfg.f + 1) break;
    if (rank == secrets_.rank) continue;
    r2.commits.push_back(commit_env);
  }
  SignedMessage r2_env =
      make_envelope(cfg_, secrets_, encode_body(MsgType::kReveal, r2), cfg_epoch_, ctx.rng());

  ContributeMsg mine;
  mine.id = st.id;
  mine.server = secrets_.rank;
  mine.reveal = r2_env;
  mine.contribution = cancel;
  // Bogus VDE: a proof for an unrelated honest pair.
  mpz::Bigint dummy_r1 = gp.random_exponent(ctx.rng());
  mpz::Bigint dummy_r2 = gp.random_exponent(ctx.rng());
  mpz::Bigint dummy_rho = gp.random_element(ctx.rng());
  elgamal::Ciphertext da = cfg_.a.encryption_key.encrypt_with_nonce(dummy_rho, dummy_r1);
  elgamal::Ciphertext db = cfg_.b.encryption_key.encrypt_with_nonce(dummy_rho, dummy_r2);
  mine.vde = zkp::vde_prove(cfg_.a.encryption_key, da, dummy_r1, cfg_.b.encryption_key, db,
                            dummy_r2, vde_context(st.id, secrets_.rank), ctx.rng());
  SignedMessage mine_env = make_envelope(cfg_, secrets_, encode_body(MsgType::kContribute, mine),
                                         cfg_epoch_, ctx.rng());
  evidence.contributes.push_back(mine_env);

  // Spliced payload: honest(f) × cancel == E(ρ̂).
  eas.push_back(cancel.ea);
  ebs.push_back(cancel.eb);
  auto ea = cfg_.a.encryption_key.product(eas);
  auto eb = cfg_.b.encryption_key.product(ebs);
  if (!ea || !eb) return;

  BlindPayload payload;
  payload.id = st.id;
  payload.blinded.ea = *ea;
  payload.blinded.eb = *eb;
  Writer w;
  evidence.encode(w);
  start_sign_session(ctx, SignPurpose::kBlind, encode_body(MsgType::kBlind, payload), w.take());
}

// --- threshold-signing coordinator ----------------------------------------------------

std::uint64_t ProtocolServer::start_sign_session(net::Context& ctx, SignPurpose purpose,
                                                 std::vector<std::uint8_t> payload,
                                                 std::vector<std::uint8_t> evidence,
                                                 std::set<ServerRank> excluded, int attempt) {
  // Abandon after enough failed attempts (each retry excludes provably-bad
  // members or re-solicits; f+2 attempts suffice against f Byzantine
  // members under eventual delivery).
  if (attempt > static_cast<int>(my_service().cfg.f) + 2) return 0;

  std::uint64_t session = next_session_++;
  SignSession ss;
  ss.session = session;
  ss.purpose = purpose;
  ss.payload = payload;
  ss.evidence = evidence;
  ss.excluded = std::move(excluded);
  ss.attempt = attempt;
  // Transfer id for result-based retransmission cancellation (B only; A never
  // records results_, so its done sessions rely on the attempt cap).
  try {
    if (purpose == SignPurpose::kBlind) {
      ss.transfer = decode_as<BlindPayload>(MsgType::kBlind, payload).id.transfer;
    } else {
      ss.transfer = decode_as<DonePayload>(MsgType::kDone, payload).id.transfer;
    }
  } catch (const CodecError&) {
  }
  ss.cancel_on_result = is_b();
  sign_sessions_[session] = std::move(ss);
  SignSession& stored = sign_sessions_[session];

  SignRequestMsg req;
  req.session = session;
  req.purpose = static_cast<std::uint8_t>(purpose);
  req.payload = std::move(payload);
  req.evidence = std::move(evidence);
  std::vector<std::uint8_t> framed =
      signed_frame(ctx, encode_body(MsgType::kSignRequest, req));
  const ServicePublic& svc = my_service();
  Resend r;
  for (ServerRank rank = 1; rank <= svc.cfg.n; ++rank) {
    ctx.send(svc.node_of(rank), framed);
    r.msgs.emplace_back(svc.node_of(rank), framed);
  }
  r.transfer = stored.transfer;
  r.cancel_on_result = stored.cancel_on_result;
  stored.round_resend = arm_resend(ctx, std::move(r));
  // With retransmission on, a stalled round usually means loss, not a bad
  // member: back off exponentially so resends get a chance before the session
  // is torn down and restarted.
  net::Time retry = opts_.signing_retry_delay;
  if (opts_.retransmit) retry <<= std::min(attempt, 4);
  ctx.set_timer(retry, kTimerSignRetry | session);
  return session;
}

void ProtocolServer::sign_session_retry(net::Context& ctx, std::uint64_t session) {
  auto it = sign_sessions_.find(session);
  if (it == sign_sessions_.end() || it->second.done) return;
  SignSession ss = std::move(it->second);
  sign_sessions_.erase(it);
  cancel_resend(ss.round_resend);
  if (ss.cancel_on_result && results_.contains(ss.transfer)) return;  // moot
  // Exclude quorum members that stalled the session mid-way; they had their
  // chance. Cap total exclusions at f — beyond that we may be excluding
  // slow-but-honest members, so start over with a clean slate.
  std::set<ServerRank> excluded = ss.excluded;
  if (!ss.quorum.empty()) {
    for (const threshold::NonceCommitment& c : ss.quorum) {
      if (!ss.partials.contains(c.index)) excluded.insert(c.index);
    }
  }
  if (excluded.size() > my_service().cfg.f) excluded.clear();
  start_sign_session(ctx, ss.purpose, std::move(ss.payload), std::move(ss.evidence),
                     std::move(excluded), ss.attempt + 1);
}

void ProtocolServer::handle_sign_commit_reply(net::Context& ctx, const SignedMessage& env) {
  if (!envelope_signature_ok(cfg_, env)) return;
  if (env.service != static_cast<std::uint8_t>(secrets_.role)) return;
  SignCommitReplyMsg msg;
  try {
    msg = decode_as<SignCommitReplyMsg>(MsgType::kSignCommitReply, env.body);
  } catch (const CodecError&) {
    return;
  }
  auto it = sign_sessions_.find(msg.session);
  if (it == sign_sessions_.end()) return;
  SignSession& ss = it->second;
  if (ss.done || !ss.quorum.empty()) return;
  if (msg.commit.index != env.signer) return;
  if (ss.excluded.contains(env.signer)) return;
  ss.commits.emplace(env.signer, msg.commit);

  const std::size_t need = 2 * my_service().cfg.f + 1;
  if (ss.commits.size() < need) return;
  // Quorum: first f+1 committers in rank order (deterministic).
  for (const auto& [rank, commit] : ss.commits) {
    if (ss.quorum.size() == my_service().cfg.quorum()) break;
    ss.quorum.push_back(commit);
  }
  SignQuorumMsg q;
  q.session = ss.session;
  q.quorum = ss.quorum;
  cancel_resend(ss.round_resend);  // commit round complete
  std::vector<std::uint8_t> framed =
      signed_frame(ctx, encode_body(MsgType::kSignQuorum, q));
  const ServicePublic& svc = my_service();
  Resend r;
  for (ServerRank rank = 1; rank <= svc.cfg.n; ++rank) {
    ctx.send(svc.node_of(rank), framed);
    r.msgs.emplace_back(svc.node_of(rank), framed);
  }
  r.transfer = ss.transfer;
  r.cancel_on_result = ss.cancel_on_result;
  ss.round_resend = arm_resend(ctx, std::move(r));
}

void ProtocolServer::handle_sign_reveal_reply(net::Context& ctx, const SignedMessage& env) {
  if (!envelope_signature_ok(cfg_, env)) return;
  if (env.service != static_cast<std::uint8_t>(secrets_.role)) return;
  SignRevealReplyMsg msg;
  try {
    msg = decode_as<SignRevealReplyMsg>(MsgType::kSignRevealReply, env.body);
  } catch (const CodecError&) {
    return;
  }
  auto it = sign_sessions_.find(msg.session);
  if (it == sign_sessions_.end()) return;
  SignSession& ss = it->second;
  if (ss.done || ss.quorum.empty()) return;
  if (msg.reveal.index != env.signer) return;
  if (ss.reveals.contains(env.signer)) return;
  // The reveal must come from a quorum member and match its commitment.
  auto cit = std::find_if(ss.quorum.begin(), ss.quorum.end(),
                          [&](const auto& c) { return c.index == env.signer; });
  if (cit == ss.quorum.end()) return;
  if (threshold::nonce_commitment_digest(cfg_.params, msg.reveal) != cit->digest) return;
  ss.reveals.emplace(env.signer, msg.reveal);
  if (ss.reveals.size() < ss.quorum.size()) return;

  SignRevealSetMsg rs;
  rs.session = ss.session;
  for (const auto& [rank, reveal] : ss.reveals) rs.reveals.push_back(reveal);
  cancel_resend(ss.round_resend);  // reveal round complete
  std::vector<std::uint8_t> framed =
      signed_frame(ctx, encode_body(MsgType::kSignRevealSet, rs));
  const ServicePublic& svc = my_service();
  Resend r;
  for (ServerRank rank = 1; rank <= svc.cfg.n; ++rank) {
    ctx.send(svc.node_of(rank), framed);
    r.msgs.emplace_back(svc.node_of(rank), framed);
  }
  r.transfer = ss.transfer;
  r.cancel_on_result = ss.cancel_on_result;
  ss.round_resend = arm_resend(ctx, std::move(r));
}

void ProtocolServer::handle_sign_partial_reply(net::Context& ctx, const SignedMessage& env) {
  if (!envelope_signature_ok(cfg_, env)) return;
  if (env.service != static_cast<std::uint8_t>(secrets_.role)) return;
  SignPartialReplyMsg msg;
  try {
    msg = decode_as<SignPartialReplyMsg>(MsgType::kSignPartialReply, env.body);
  } catch (const CodecError&) {
    return;
  }
  auto it = sign_sessions_.find(msg.session);
  if (it == sign_sessions_.end()) return;
  SignSession& ss = it->second;
  if (ss.done || ss.reveals.size() != ss.quorum.size() || ss.quorum.empty()) return;
  if (msg.partial.index != env.signer) return;
  auto rit = ss.reveals.find(env.signer);
  if (rit == ss.reveals.end()) return;

  std::vector<threshold::NonceReveal> reveals;
  for (const auto& [rank, reveal] : ss.reveals) reveals.push_back(reveal);
  mpz::Bigint r_joint = threshold::combine_nonce(cfg_.params, reveals);
  mpz::Bigint e = zkp::schnorr_challenge(cfg_.params, r_joint, my_service().signing_key.point(),
                                    ss.payload);
  const threshold::FeldmanCommitments& commits = my_service().sign_commitments;
  if (!threshold::verify_partial_signature(cfg_.params, commits, rit->second, msg.partial, e)) {
    // Identifiable abort: this member provably misbehaved — retry without it.
    SignSession dead = std::move(it->second);
    sign_sessions_.erase(it);
    cancel_resend(dead.round_resend);
    std::set<ServerRank> excluded = dead.excluded;
    excluded.insert(env.signer);
    start_sign_session(ctx, dead.purpose, std::move(dead.payload), std::move(dead.evidence),
                       std::move(excluded), dead.attempt + 1);
    return;
  }
  ss.partials.emplace(env.signer, msg.partial);
  if (ss.partials.size() < ss.quorum.size()) return;

  std::vector<threshold::PartialSignature> partials;
  for (const auto& [rank, partial] : ss.partials) partials.push_back(partial);
  zkp::SchnorrSignature sig = threshold::combine_signature(cfg_.params, reveals, partials);
  ss.done = true;
  cancel_resend(ss.round_resend);
  sign_session_finished(ctx, ss, std::move(sig));
}

void ProtocolServer::sign_session_finished(net::Context& ctx, SignSession& ss,
                                           zkp::SchnorrSignature sig) {
  ServiceSignedMsg out;
  out.service = static_cast<std::uint8_t>(secrets_.role);
  out.body = ss.payload;
  out.sig = std::move(sig);

  std::vector<std::uint8_t> framed = frame_service(out);
  if (ss.purpose == SignPurpose::kBlind) {
    if (behavior_ == Behavior::kBogusBlindCoordinator ||
        behavior_ == Behavior::kAdaptiveCancelCoordinator) {
      ++attack_successes_;  // the service signed an adversarial payload
    }
    // Step 5(d): C_j → A (retransmitted until this transfer's result lands).
    Resend r;
    for (ServerRank rank = 1; rank <= cfg_.a.cfg.n; ++rank) {
      ctx.send(cfg_.a.node_of(rank), framed);
      r.msgs.emplace_back(cfg_.a.node_of(rank), framed);
    }
    r.transfer = ss.transfer;
    r.cancel_on_result = ss.cancel_on_result;
    arm_resend(ctx, std::move(r));
    try {
      BlindPayload bp = decode_as<BlindPayload>(MsgType::kBlind, ss.payload);
      emit_trace(ctx, obs::EventKind::kSignDone, &bp.id,
                 {.subject = static_cast<std::uint32_t>(SignPurpose::kBlind)});
      auto cit = coordinator_.find(bp.id);
      if (cit != coordinator_.end() && cit->second.t_sign != 0) {
        metrics_.phase_blind_sign_us.observe(ctx.now() - cit->second.t_sign);
      }
    } catch (const CodecError&) {
    }
  } else {
    // Step 6(e): l → B. Nothing on A observes B's results, so this resend is
    // capped small; a B server that still misses the done message recovers
    // through its result pull.
    Resend r;
    for (ServerRank rank = 1; rank <= cfg_.b.cfg.n; ++rank) {
      ctx.send(cfg_.b.node_of(rank), framed);
      r.msgs.emplace_back(cfg_.b.node_of(rank), framed);
    }
    arm_resend(ctx, std::move(r), 0, std::min(opts_.retransmit_max_attempts, 5));
    try {
      DonePayload done = decode_as<DonePayload>(MsgType::kDone, ss.payload);
      emit_trace(ctx, obs::EventKind::kSignDone, &done.id,
                 {.subject = static_cast<std::uint32_t>(SignPurpose::kDone)});
      auto rit = responder_.find(done.id);
      if (rit != responder_.end()) {
        rit->second.sent_done = true;
        if (rit->second.t_done_sign != 0) {
          metrics_.phase_done_sign_us.observe(ctx.now() - rit->second.t_done_sign);
        }
      }
    } catch (const CodecError&) {
    }
  }
}

// --- threshold-signing member -----------------------------------------------------------

void ProtocolServer::handle_sign_request(net::Context& ctx, const SignedMessage& env) {
  // Signing needs this server's CURRENT key share: retired/standby servers
  // have none, and a pending member's old share would produce partials the
  // re-shared joint key rejects.
  if (!active() || share_pending_) return;
  if (!envelope_signature_ok(cfg_, env)) return;
  if (env.service != static_cast<std::uint8_t>(secrets_.role)) return;
  SignRequestMsg msg;
  try {
    msg = decode_as<SignRequestMsg>(MsgType::kSignRequest, env.body);
  } catch (const CodecError&) {
    return;
  }

  // Self-verification of the signing request (§4.2.3): a member signs only
  // payloads justified by valid evidence.
  auto purpose = static_cast<SignPurpose>(msg.purpose);
  if (purpose == SignPurpose::kBlind) {
    if (!is_b()) return;
    bool ok = opts_.batch_verify
                  ? check_blind_sign_request_batch(cfg_, msg.payload, msg.evidence, ctx.rng())
                  : check_blind_sign_request(cfg_, msg.payload, msg.evidence);
    if (!ok) {
      metrics_.verify_fail.inc();
      if (opts_.batch_verify) metrics_.batch_fallbacks.inc();
      emit_trace(ctx, obs::EventKind::kVerifyFail, nullptr,
                 {.peer = env.signer, .subject = static_cast<std::uint32_t>(MsgType::kBlind)});
      return;
    }
    metrics_.verify_pass.inc();
    emit_trace(ctx, obs::EventKind::kVerifyPass, nullptr,
               {.peer = env.signer, .subject = static_cast<std::uint32_t>(MsgType::kBlind)});
  } else if (purpose == SignPurpose::kDone) {
    if (is_b()) return;
    DonePayload payload;
    try {
      payload = decode_as<DonePayload>(MsgType::kDone, msg.payload);
    } catch (const CodecError&) {
      return;
    }
    auto sit = stored_.find(payload.id.transfer);
    if (sit == stored_.end()) return;
    bool ok = opts_.batch_verify ? check_done_sign_request_batch(cfg_, msg.payload, msg.evidence,
                                                                 sit->second, ctx.rng())
                                 : check_done_sign_request(cfg_, msg.payload, msg.evidence,
                                                           sit->second);
    if (!ok) {
      metrics_.verify_fail.inc();
      if (opts_.batch_verify) metrics_.batch_fallbacks.inc();
      emit_trace(ctx, obs::EventKind::kVerifyFail, &payload.id,
                 {.peer = env.signer, .subject = static_cast<std::uint32_t>(MsgType::kDone)});
      return;
    }
    metrics_.verify_pass.inc();
    emit_trace(ctx, obs::EventKind::kVerifyPass, &payload.id,
               {.peer = env.signer, .subject = static_cast<std::uint32_t>(MsgType::kDone)});
  } else {
    return;
  }

  net::NodeId requester = cfg_.service(secrets_.role).node_of(env.signer);
  auto key = std::make_pair(requester, msg.session);
  auto it = member_sessions_.find(key);
  if (it != member_sessions_.end()) {
    // Duplicate request: the member MUST answer with the same bytes — a fresh
    // nonce commitment for an existing session would risk nonce reuse.
    resend_frame(ctx, requester, it->second.commit_frame);
    return;
  }
  MemberSession ms;
  ms.payload = msg.payload;
  ms.member = std::make_unique<threshold::SigningMember>(cfg_.params, secrets_.sign_share,
                                                         ctx.rng());
  SignCommitReplyMsg reply;
  reply.session = msg.session;
  reply.commit = ms.member->commitment();
  ms.commit_frame = signed_frame(ctx, encode_body(MsgType::kSignCommitReply, reply));
  it = member_sessions_.emplace(key, std::move(ms)).first;
  ctx.send(requester, it->second.commit_frame);
}

void ProtocolServer::handle_sign_quorum(net::Context& ctx, const SignedMessage& env) {
  if (!envelope_signature_ok(cfg_, env)) return;
  if (env.service != static_cast<std::uint8_t>(secrets_.role)) return;
  SignQuorumMsg msg;
  try {
    msg = decode_as<SignQuorumMsg>(MsgType::kSignQuorum, env.body);
  } catch (const CodecError&) {
    return;
  }
  net::NodeId requester = cfg_.service(secrets_.role).node_of(env.signer);
  auto it = member_sessions_.find(std::make_pair(requester, msg.session));
  if (it == member_sessions_.end()) return;
  MemberSession& ms = it->second;
  if (!ms.quorum.empty()) {
    // Quorum already fixed: re-answer duplicates with the cached reveal.
    resend_frame(ctx, requester, ms.reveal_frame);
    return;
  }
  bool mine = std::any_of(msg.quorum.begin(), msg.quorum.end(),
                          [&](const auto& c) { return c.index == secrets_.rank; });
  if (!mine) return;
  ms.quorum = msg.quorum;

  SignRevealReplyMsg reply;
  reply.session = msg.session;
  reply.reveal = ms.member->reveal();
  ms.reveal_frame = signed_frame(ctx, encode_body(MsgType::kSignRevealReply, reply));
  ctx.send(requester, ms.reveal_frame);
}

void ProtocolServer::handle_sign_reveal_set(net::Context& ctx, const SignedMessage& env) {
  if (!envelope_signature_ok(cfg_, env)) return;
  if (env.service != static_cast<std::uint8_t>(secrets_.role)) return;
  SignRevealSetMsg msg;
  try {
    msg = decode_as<SignRevealSetMsg>(MsgType::kSignRevealSet, env.body);
  } catch (const CodecError&) {
    return;
  }
  if (behavior_ == Behavior::kWithholdPartial) return;
  net::NodeId requester = cfg_.service(secrets_.role).node_of(env.signer);
  auto it = member_sessions_.find(std::make_pair(requester, msg.session));
  if (it == member_sessions_.end()) return;
  MemberSession& ms = it->second;
  if (ms.responded) {
    // Sign at most once per session. A duplicate of the SAME reveal set gets
    // the cached partial; a different set is refused outright.
    if (hash::Sha256::digest(env.body) == ms.reveals_digest)
      resend_frame(ctx, requester, ms.partial_frame);
    return;
  }
  if (ms.quorum.empty()) return;

  auto partial = ms.member->respond(ms.quorum, msg.reveals,
                                    cfg_.service(secrets_.role).signing_key.point(), ms.payload);
  if (!partial) return;  // reveal set inconsistent with commitments — refuse
  ms.responded = true;
  ms.reveals_digest = hash::Sha256::digest(env.body);

  SignPartialReplyMsg reply;
  reply.session = msg.session;
  reply.partial = *partial;
  ms.partial_frame = signed_frame(ctx, encode_body(MsgType::kSignPartialReply, reply));
  ctx.send(requester, ms.partial_frame);
}

// --- service A responder ------------------------------------------------------------------

void ProtocolServer::handle_blind(net::Context& ctx, const ServiceSignedMsg& msg) {
  if (is_b() || !active()) return;
  auto blind = check_blind(cfg_, msg);
  if (!blind) return;
  if (seen_blind_.contains(blind->id)) return;

  if (!stored_.contains(blind->id.transfer)) {
    // Step flexibility: the blinding pair can arrive before E_A(m) exists
    // (it depends on neither the ciphertext nor A's key). Park it.
    if (pending_store_.contains(blind->id.transfer)) parked_blinds_.push_back(msg);
    return;
  }

  // Designated-responder policy mirroring §4.1 (the paper has every server
  // in A perform step 6 eagerly; f+1 responders with delayed backups give
  // the same liveness with less redundant work): rank 1 acts at once, ranks
  // 2..f+1 after a backup delay, ranks beyond f+1 only serve decryption
  // shares.
  if (secrets_.rank > cfg_.a.cfg.f + 1) return;
  if (responder_.contains(blind->id)) return;  // backup timer already armed
  ResponderState& st = responder_.try_emplace(blind->id).first->second;
  st.blind_env = msg;
  st.blind = *blind;

  net::Time delay = (secrets_.rank - 1) * opts_.responder_backup_delay;
  if (delay == 0) {
    start_responder(ctx, blind->id);
  } else {
    std::uint64_t key = next_responder_timer_++;
    responder_timer_ids_[key] = blind->id;
    ctx.set_timer(delay, kTimerResponder | key);
  }
}

void ProtocolServer::start_responder(net::Context& ctx, const InstanceId& id) {
  auto it = responder_.find(id);
  if (it == responder_.end()) return;
  ResponderState& st = it->second;
  if (st.sent_done || seen_blind_.contains(id)) return;
  seen_blind_.insert(id);

  auto sit = stored_.find(id.transfer);
  if (sit == stored_.end()) return;
  auto ea_m_rho = cfg_.a.encryption_key.multiply(sit->second, st.blind.blinded.ea);
  if (!ea_m_rho) return;  // degenerate: wait for another coordinator's instance
  st.ea_m_rho = *ea_m_rho;

  DecryptRequestMsg req;
  req.id = id;
  req.blind = st.blind_env;
  std::vector<std::uint8_t> framed =
      signed_frame(ctx, encode_body(MsgType::kDecryptRequest, req));
  Resend r;
  for (ServerRank rank = 1; rank <= cfg_.a.cfg.n; ++rank) {
    ctx.send(cfg_.a.node_of(rank), framed);
    r.msgs.emplace_back(cfg_.a.node_of(rank), framed);
  }
  r.transfer = id.transfer;
  st.decrypt_resend = arm_resend(ctx, std::move(r));
  st.t_begin = ctx.now();
  emit_trace(ctx, obs::EventKind::kDecryptBegin, &id);
}

void ProtocolServer::handle_decrypt_request(net::Context& ctx, const SignedMessage& env) {
  if (is_b() || !active() || share_pending_) return;
  if (!envelope_signature_ok(cfg_, env)) return;
  if (env.service != static_cast<std::uint8_t>(ServiceRole::kServiceA)) return;
  DecryptRequestMsg msg;
  try {
    msg = decode_as<DecryptRequestMsg>(MsgType::kDecryptRequest, env.body);
  } catch (const CodecError&) {
    return;
  }
  // Duplicate request: replay the cached share reply (cheap, and avoids
  // re-proving) before the expensive evidence re-check.
  auto ckey = std::make_pair(msg.id, env.signer);
  if (auto cached = decrypt_reply_frames_.find(ckey); cached != decrypt_reply_frames_.end()) {
    resend_frame(ctx, cfg_.a.node_of(env.signer), cached->second);
    return;
  }
  // Self-verifying decryption request (step 6(b)): the service-signed blind
  // message is the evidence that decrypting E_A(mρ) is authorized.
  auto blind = check_blind(cfg_, msg.blind);
  if (!blind || !(blind->id == msg.id)) return;
  auto sit = stored_.find(msg.id.transfer);
  if (sit == stored_.end()) return;
  auto ea_m_rho = cfg_.a.encryption_key.multiply(sit->second, blind->blinded.ea);
  if (!ea_m_rho) return;

  threshold::DecryptionShare share = threshold::make_decryption_share(
      cfg_.params, *ea_m_rho, secrets_.enc_share, decrypt_context(msg.id), ctx.rng());
  DecryptShareReplyMsg reply;
  reply.id = msg.id;
  reply.share = std::move(share);
  std::vector<std::uint8_t> frame =
      signed_frame(ctx, encode_body(MsgType::kDecryptShareReply, reply));
  decrypt_reply_frames_[ckey] = frame;
  ctx.send(cfg_.a.node_of(env.signer), frame);
}

void ProtocolServer::handle_decrypt_share_reply(net::Context& ctx, const SignedMessage& env) {
  if (is_b() || !active()) return;
  if (!envelope_signature_ok(cfg_, env)) return;
  if (env.service != static_cast<std::uint8_t>(ServiceRole::kServiceA)) return;
  DecryptShareReplyMsg msg;
  try {
    msg = decode_as<DecryptShareReplyMsg>(MsgType::kDecryptShareReply, env.body);
  } catch (const CodecError&) {
    return;
  }
  auto it = responder_.find(msg.id);
  if (it == responder_.end()) return;
  ResponderState& st = it->second;
  if (st.signing || st.sent_done || !seen_blind_.contains(msg.id)) return;
  if (msg.share.index != env.signer) return;
  if (!threshold::verify_decryption_share(cfg_.params, cfg_.a.enc_commitments, st.ea_m_rho,
                                          msg.share, decrypt_context(msg.id))) {
    metrics_.verify_fail.inc();
    emit_trace(ctx, obs::EventKind::kVerifyFail, &msg.id,
               {.peer = env.signer,
                .subject = static_cast<std::uint32_t>(MsgType::kDecryptShareReply)});
    return;
  }
  metrics_.verify_pass.inc();
  emit_trace(ctx, obs::EventKind::kVerifyPass, &msg.id,
             {.peer = env.signer,
              .subject = static_cast<std::uint32_t>(MsgType::kDecryptShareReply)});
  st.shares.emplace(msg.share.index, msg.share);
  if (st.shares.size() < cfg_.a.cfg.quorum()) return;
  st.signing = true;
  cancel_resend(st.decrypt_resend);  // decryption round complete
  st.t_done_sign = ctx.now();
  if (st.t_begin != 0) metrics_.phase_decrypt_us.observe(st.t_done_sign - st.t_begin);
  emit_trace(ctx, obs::EventKind::kDecryptDone, &msg.id, {.count = cfg_.a.cfg.quorum()});

  std::vector<threshold::DecryptionShare> shares;
  for (const auto& [rank, share] : st.shares) {
    if (shares.size() == cfg_.a.cfg.quorum()) break;
    shares.push_back(share);
  }
  mpz::Bigint m_rho = threshold::combine_decryption(cfg_.params, st.ea_m_rho, shares);

  // Step 6(c): E_B(m) := (mρ) · E_B(ρ)^{-1}.
  elgamal::Ciphertext eb_m =
      cfg_.b.encryption_key.juxtapose(m_rho, cfg_.b.encryption_key.inverse(st.blind.blinded.eb));

  DonePayload payload;
  payload.id = msg.id;
  payload.ea_m = stored_.at(msg.id.transfer);
  payload.eb_m = std::move(eb_m);

  DoneEvidence evidence;
  evidence.blind = st.blind_env;
  evidence.m_rho = std::move(m_rho);
  evidence.shares = std::move(shares);
  Writer w;
  evidence.encode(w);
  emit_trace(ctx, obs::EventKind::kDoneSignBegin, &msg.id);
  start_sign_session(ctx, SignPurpose::kDone, encode_body(MsgType::kDone, payload), w.take());
}

// --- service B result consumption ------------------------------------------------------------

void ProtocolServer::handle_done(net::Context& ctx, const ServiceSignedMsg& msg) {
  if (!is_b()) return;
  auto done = check_done(cfg_, msg);
  if (!done) return;
  record_done(&ctx, *done, msg);
}

void ProtocolServer::record_done(net::Context* ctx, const DonePayload& done,
                                 const ServiceSignedMsg& msg) {
  // Keep every distinct validated done (several coordinators may finish with
  // different — equivalent — ciphertexts); clients pick one.
  auto& payloads = done_payloads_[done.id.transfer];
  bool known = false;
  for (const DonePayload& p : payloads) known = known || p.eb_m == done.eb_m;
  if (!known) {
    payloads.push_back(done);
    done_msgs_[done.id.transfer].push_back(msg);
  }
  // First valid result wins; later ones (from other coordinators/responders)
  // are equivalent ciphertexts of the same plaintext. A new result moots all
  // retransmission still running for the transfer.
  if (results_.try_emplace(done.id.transfer, done.eb_m).second) {
    results_count_.fetch_add(1, std::memory_order_release);
    cancel_resends_for_transfer(done.id.transfer);
    // Restore-path replays pass no context (no trace timestamp exists there).
    if (ctx != nullptr) {
      emit_trace(*ctx, obs::EventKind::kDoneRecorded, &done.id);
      // The completion frees an admission slot; queued transfers start now.
      // complete() is a no-op for transfers this node never self-coordinated
      // (results learned via pulls), and the restore path skips this entirely
      // — the engine is volatile and the next on_start re-feeds it.
      std::vector<TransferId> admitted = engine_.complete(done.id.transfer);
      metrics_.engine_inflight.set(engine_.inflight());
      metrics_.engine_queued.set(engine_.queued());
      launch_admitted(*ctx, admitted);
    }
  }
}

// --- client-facing handlers -------------------------------------------------------

void ProtocolServer::schedule_coordinator(net::Context& ctx, TransferId transfer) {
  if (!is_b() || !active() || secrets_.rank > opts_.max_coordinators) return;
  if (results_.contains(transfer)) return;  // nothing to run — and no slot burned
  // Admission gate (core/transfer_engine.hpp): self-coordination only. The
  // contributor / responder / signing-member roles react to whatever arrives
  // regardless of this node's admission queue, so a capped server still
  // serves every other coordinator's transfers at full speed.
  engine_.register_transfer(transfer);
  TransferEngine::StartResult sr = engine_.request_start(transfer);
  if (sr.decision == TransferEngine::Admission::kQueued) {
    metrics_.engine_defers.inc();
    metrics_.engine_queued.set(engine_.queued());
    emit_trace(ctx, obs::EventKind::kEngineDefer, nullptr,
               {.transfer = transfer, .count = engine_.queued()});
  }
  launch_admitted(ctx, sr.admitted);
}

void ProtocolServer::launch_admitted(net::Context& ctx, std::span<const TransferId> admitted) {
  for (TransferId t : admitted) {
    metrics_.engine_admits.inc();
    metrics_.engine_inflight.set(engine_.inflight());
    metrics_.engine_queued.set(engine_.queued());
    emit_trace(ctx, obs::EventKind::kEngineAdmit, nullptr,
               {.transfer = t, .count = engine_.inflight()});
    // Rank-staggered start (§4.1), exactly as the pre-engine flow: rank 1
    // coordinates immediately, backups arm the delayed timer.
    net::Time delay = (secrets_.rank - 1) * opts_.coordinator_backup_delay;
    if (delay == 0) {
      start_coordinator(ctx, t, next_epoch_of(t));
    } else {
      ctx.set_timer(delay, kTimerCoordinator | t);
    }
  }
}

void ProtocolServer::handle_transfer_request(net::Context& ctx, net::NodeId from,
                                             std::span<const std::uint8_t> body) {
  (void)from;
  TransferRequestMsg msg;
  try {
    msg = decode_as<TransferRequestMsg>(MsgType::kTransferRequest, body);
  } catch (const CodecError&) {
    return;
  }
  if (is_b()) {
    if (!transfers_.insert(msg.transfer).second) return;  // already registered
    schedule_coordinator(ctx, msg.transfer);
    arm_result_pull(ctx, msg.transfer);
  } else {
    if (stored_.contains(msg.transfer) || pending_store_.contains(msg.transfer))
      return;  // first writer wins
    if (!cfg_.a.encryption_key.well_formed(msg.ea_m)) return;
    stored_[msg.transfer] = msg.ea_m;
  }
}

void ProtocolServer::handle_result_request(net::Context& ctx, net::NodeId from,
                                           std::span<const std::uint8_t> body) {
  if (!is_b()) return;
  ResultRequestMsg msg;
  try {
    msg = decode_as<ResultRequestMsg>(MsgType::kResultRequest, body);
  } catch (const CodecError&) {
    return;
  }
  auto it = done_msgs_.find(msg.transfer);
  if (it == done_msgs_.end() || it->second.empty()) return;
  ResultReplyMsg reply;
  reply.transfer = msg.transfer;
  reply.done = it->second.front();
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kClient));
  w.bytes(encode_body(MsgType::kResultReply, reply));
  ctx.send(from, w.take());
}

void ProtocolServer::handle_client_decrypt_request(net::Context& ctx, net::NodeId from,
                                                   std::span<const std::uint8_t> body) {
  if (!is_b() || !active() || share_pending_) return;
  ClientDecryptRequestMsg msg;
  try {
    msg = decode_as<ClientDecryptRequestMsg>(MsgType::kClientDecryptRequest, body);
  } catch (const CodecError&) {
    return;
  }
  // Duplicate of the same request from the same client: replay the cached
  // reply. A request for a DIFFERENT (still authorized) ciphertext gets a
  // fresh share and replaces the cache entry.
  auto ckey = std::make_pair(from, msg.transfer);
  auto cached = client_decrypt_cache_.find(ckey);
  if (cached != client_decrypt_cache_.end() &&
      std::ranges::equal(cached->second.first, body)) {
    resend_frame(ctx, from, cached->second.second);
    return;
  }
  // Only decrypt ciphertexts that appear in a VALID done message for this
  // transfer — the client API must not be a general decryption oracle.
  auto it = done_payloads_.find(msg.transfer);
  if (it == done_payloads_.end()) return;
  bool authorized = false;
  for (const DonePayload& p : it->second) authorized = authorized || p.eb_m == msg.ciphertext;
  if (!authorized) return;

  threshold::DecryptionShare share = threshold::make_decryption_share(
      cfg_.params, msg.ciphertext, secrets_.enc_share, client_decrypt_context(msg.transfer),
      ctx.rng());
  ClientDecryptReplyMsg reply;
  reply.transfer = msg.transfer;
  reply.share = std::move(share);
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kClient));
  w.bytes(encode_body(MsgType::kClientDecryptReply, reply));
  std::vector<std::uint8_t> frame = w.take();
  client_decrypt_cache_[ckey] = {std::vector<std::uint8_t>(body.begin(), body.end()), frame};
  ctx.send(from, frame);
}

// --- epochal reconfiguration ---------------------------------------------------
//
// Round shape (docs/PROTOCOL.md "Reconfiguration"): a proposer broadcasts the
// spec (kReconfigStart); old-roster members of the changing service each deal
// ONE re-sharing (kReshareDeal commitments broadcast, kReshareSubshare secrets
// point-to-point to their recipients); the proposer certifies the first f+1
// commitment-valid deals into a kReconfigApply; old-roster members echo the
// FIRST valid apply's digest exactly once (kReconfigEcho); any node holding a
// valid apply plus 2f+1 distinct old-roster echoes of its digest installs the
// new configuration. Echo-once gives install uniqueness: with at most f
// Byzantine members, two different digests cannot both collect 2f+1 echoes.

void ProtocolServer::schedule_reconfig(ReconfigSpec spec, net::Time at) {
  scheduled_reconfigs_.emplace_back(at, std::move(spec));
}

void ProtocolServer::maybe_send_wrong_epoch(net::Context& ctx, net::NodeId from,
                                            const SignedMessage& env) {
  // Liveness-only typed rejection; answered every time (bounded by the
  // sender's own capped retransmission, never by receiver-side state).
  WrongEpochMsg msg;
  msg.service = env.service;
  msg.epoch = cfg_epoch_;
  ctx.send(from, frame_client(encode_body(MsgType::kWrongEpoch, msg)));
}

void ProtocolServer::send_reconfig_pull(net::Context& ctx, net::NodeId to) {
  ReconfigPullMsg msg;
  msg.epoch = cfg_epoch_;
  ctx.send(to, frame_client(encode_body(MsgType::kReconfigPull, msg)));
}

std::vector<net::NodeId> ProtocolServer::reconfig_targets(const ReconfigSpec& spec) const {
  std::set<net::NodeId> out;
  for (ServerRank r = 1; r <= cfg_.a.cfg.n; ++r) out.insert(cfg_.a.node_of(r));
  for (ServerRank r = 1; r <= cfg_.b.cfg.n; ++r) out.insert(cfg_.b.node_of(r));
  for (const RosterEntry& e : spec.roster) out.insert(e.node);  // joiners
  return {out.begin(), out.end()};
}

void ProtocolServer::start_reconfig_round(net::Context& ctx, const ReconfigSpec& spec) {
  if (!reconfig_spec_ok(cfg_, cfg_epoch_, spec)) return;
  if (!reconfig_round_) {
    reconfig_round_.emplace();
    reconfig_round_->spec = spec;
  }
  ReconfigRound& rr = *reconfig_round_;
  if (rr.coordinating) return;
  rr.coordinating = true;

  ReconfigStartMsg start;
  start.spec = rr.spec;
  std::vector<std::uint8_t> framed =
      signed_frame(ctx, encode_body(MsgType::kReconfigStart, start));
  Resend r;
  for (net::NodeId to : reconfig_targets(rr.spec)) {
    if (to != ctx.self()) ctx.send(to, framed);
    r.msgs.emplace_back(to, framed);
  }
  rr.start_resend = arm_resend(ctx, std::move(r));
  // The proposer is usually an old-roster member itself: deal immediately.
  reshare_for(ctx, rr.spec);
}

void ProtocolServer::handle_reconfig_start(net::Context& ctx, const SignedMessage& env) {
  if (!envelope_signature_ok(cfg_, env)) return;
  ReconfigStartMsg msg;
  try {
    msg = decode_as<ReconfigStartMsg>(MsgType::kReconfigStart, env.body);
  } catch (const CodecError&) {
    return;
  }
  if (!reconfig_spec_ok(cfg_, cfg_epoch_, msg.spec)) return;
  if (!reconfig_round_) {
    reconfig_round_.emplace();
    reconfig_round_->spec = msg.spec;
  }
  // Deal for the round we joined first (at most one deal per epoch — two
  // polynomials for the same epoch would equivocate on our share).
  reshare_for(ctx, reconfig_round_->spec);
}

void ProtocolServer::reshare_for(net::Context& ctx, const ReconfigSpec& spec) {
  // Only old-roster members of the CHANGING service hold a share to re-share.
  if (static_cast<std::uint8_t>(secrets_.role) != spec.service || !active()) return;
  if (share_pending_) return;  // our own share is not even complete yet
  auto fit = dealt_frames_.find(spec.epoch);
  if (fit == dealt_frames_.end()) {
    threshold::ReshareDeal enc =
        threshold::reshare_deal(cfg_.params, secrets_.enc_share, spec.n, spec.f, ctx.rng());
    threshold::ReshareDeal sign =
        threshold::reshare_deal(cfg_.params, secrets_.sign_share, spec.n, spec.f, ctx.rng());
    ReshareDealMsg deal;
    deal.service = spec.service;
    deal.epoch = spec.epoch;
    deal.dealer = secrets_.rank;
    deal.enc = enc.commitments;
    deal.sign = sign.commitments;
    DealtEpoch de;
    de.frames.resize(spec.n + 1);
    de.frames[0] = signed_frame(ctx, encode_body(MsgType::kReshareDeal, deal));
    for (std::uint32_t j = 1; j <= spec.n; ++j) {
      ReshareSubshareMsg sub;
      sub.service = spec.service;
      sub.epoch = spec.epoch;
      sub.dealer = secrets_.rank;
      sub.target_rank = j;
      sub.enc_sub = enc.subshares[j - 1].value;
      sub.sign_sub = sign.subshares[j - 1].value;
      de.frames[j] = frame_client(encode_body(MsgType::kReshareSubshare, sub));
      de.targets.push_back(spec.roster[j - 1].node);
    }
    fit = dealt_frames_.emplace(spec.epoch, std::move(de)).first;
  }
  if (reconfig_round_ && reconfig_round_->spec.epoch == spec.epoch && reconfig_round_->dealt)
    return;
  if (reconfig_round_) reconfig_round_->dealt = true;
  const DealtEpoch& de = fit->second;
  // Commitments to every old-roster member (any of them may be proposing);
  // sub-share j point-to-point to the node holding new rank j, and only it.
  Resend r;
  const ServicePublic& svc = my_service();
  for (ServerRank rank = 1; rank <= svc.cfg.n; ++rank) {
    net::NodeId to = svc.node_of(rank);
    if (to != ctx.self()) ctx.send(to, de.frames[0]);
    r.msgs.emplace_back(to, de.frames[0]);
  }
  for (std::uint32_t j = 1; j <= spec.n; ++j) {
    net::NodeId to = de.targets[j - 1];
    if (to == ctx.self()) {
      // Our own sub-share: absorb directly instead of round-tripping.
      try {
        Reader rd(de.frames[j]);
        (void)rd.u8();  // WireKind
        absorb_subshare(ctx, decode_as<ReshareSubshareMsg>(MsgType::kReshareSubshare, rd.bytes()));
      } catch (const CodecError&) {
      }
      continue;
    }
    ctx.send(to, de.frames[j]);
    r.msgs.emplace_back(to, de.frames[j]);
  }
  if (reconfig_round_) {
    reconfig_round_->deal_resend = arm_resend(ctx, std::move(r));
  } else {
    std::uint64_t key = arm_resend(ctx, std::move(r));
    (void)key;  // cancelled with everything else at install
  }
  // A proposing dealer processes its own deal like anyone else's.
  if (reconfig_round_ && reconfig_round_->coordinating) {
    try {
      Reader rd(de.frames[0]);
      (void)rd.u8();  // WireKind
      SignedMessage env = SignedMessage::decode(rd);
      handle_reshare_deal(ctx, env);
    } catch (const CodecError&) {
    }
  }
}

void ProtocolServer::handle_reshare_deal(net::Context& ctx, const SignedMessage& env) {
  if (!reconfig_round_ || !reconfig_round_->coordinating) return;
  ReconfigRound& rr = *reconfig_round_;
  if (rr.applied) return;
  auto deal = check_reshare_deal(cfg_, cfg_epoch_, rr.spec, env);
  if (!deal) return;
  rr.deals.emplace(deal->dealer, env);
  const ServicePublic& svc = cfg_.service(static_cast<ServiceRole>(rr.spec.service));
  if (rr.deals.size() < svc.cfg.quorum()) return;
  rr.applied = true;
  cancel_resend(rr.start_resend);

  ReconfigApplyMsg apply;
  apply.spec = rr.spec;
  for (const auto& [rank, deal_env] : rr.deals) {
    if (apply.deals.size() == svc.cfg.quorum()) break;
    apply.deals.push_back(deal_env);  // map order = strictly increasing rank
  }
  // Unfinished transfers ride along so joiners know what to coordinate.
  if (is_b()) {
    for (TransferId t : transfers_) {
      if (!results_.contains(t)) apply.transfers.push_back(t);
    }
  }
  std::vector<std::uint8_t> framed =
      signed_frame(ctx, encode_body(MsgType::kReconfigApply, apply));
  Resend r;
  for (net::NodeId to : reconfig_targets(rr.spec)) {
    if (to != ctx.self()) ctx.send(to, framed);
    r.msgs.emplace_back(to, framed);
  }
  rr.apply_resend = arm_resend(ctx, std::move(r));
  // Process our own apply (echo it, count our echo, maybe install).
  try {
    Reader rd(framed);
    (void)rd.u8();
    SignedMessage apply_env = SignedMessage::decode(rd);
    handle_reconfig_apply(ctx, apply_env);
  } catch (const CodecError&) {
  }
}

void ProtocolServer::handle_reconfig_apply(net::Context& ctx, const SignedMessage& env) {
  auto apply = check_reconfig_apply(cfg_, cfg_epoch_, env);
  if (!apply) return;
  const hash::Digest digest = reconfig_apply_digest(env);
  applies_by_digest_.emplace(digest, env);

  // Echo exactly one digest per epoch — the uniqueness rule everything else
  // leans on. Only old-roster members of the changing service vote.
  if (static_cast<std::uint8_t>(secrets_.role) == apply->spec.service && active() &&
      !share_pending_) {
    if (!reconfig_round_) {
      reconfig_round_.emplace();
      reconfig_round_->spec = apply->spec;
    }
    ReconfigRound& rr = *reconfig_round_;
    if (!rr.echoed) {
      rr.echoed = true;
      ReconfigEchoMsg echo;
      echo.service = apply->spec.service;
      echo.epoch = apply->spec.epoch;
      echo.digest = digest;
      std::vector<std::uint8_t> framed =
          signed_frame(ctx, encode_body(MsgType::kReconfigEcho, echo));
      Resend r;
      for (net::NodeId to : reconfig_targets(apply->spec)) {
        if (to != ctx.self()) ctx.send(to, framed);
        r.msgs.emplace_back(to, framed);
      }
      rr.echo_resend = arm_resend(ctx, std::move(r));
      // Count our own echo.
      try {
        Reader rd(framed);
        (void)rd.u8();
        SignedMessage echo_env = SignedMessage::decode(rd);
        echoes_by_digest_[digest].emplace(echo_env.signer, echo_env);
      } catch (const CodecError&) {
      }
    }
  }
  try_install(ctx);
}

void ProtocolServer::handle_reconfig_echo(net::Context& ctx, const SignedMessage& env) {
  if (!envelope_signature_ok(cfg_, env)) return;
  ReconfigEchoMsg msg;
  try {
    msg = decode_as<ReconfigEchoMsg>(MsgType::kReconfigEcho, env.body);
  } catch (const CodecError&) {
    return;
  }
  // Echo votes count per-service: the signer must belong to the service its
  // echo claims to certify (check_install_record re-checks this).
  if (env.service != msg.service) return;
  if (msg.epoch != cfg_epoch_ + 1) return;
  echoes_by_digest_[msg.digest].emplace(env.signer, env);
  try_install(ctx);
}

void ProtocolServer::try_install(net::Context& ctx) {
  for (const auto& [digest, apply_env] : applies_by_digest_) {
    auto eit = echoes_by_digest_.find(digest);
    if (eit == echoes_by_digest_.end()) continue;
    std::vector<SignedMessage> echoes;
    echoes.reserve(eit->second.size());
    for (const auto& [rank, echo_env] : eit->second) echoes.push_back(echo_env);
    auto apply = check_install_record(cfg_, cfg_epoch_, apply_env, echoes);
    if (apply) {
      install_config(ctx, apply_env, *apply, std::move(echoes));
      return;
    }
  }
}

void ProtocolServer::install_config(net::Context& ctx, const SignedMessage& apply_env,
                                    const ReconfigApplyMsg& apply,
                                    std::vector<SignedMessage> echoes) {
  const ReconfigSpec& spec = apply.spec;
  if (spec.epoch != cfg_epoch_ + 1) return;

  // 1. Collect the instances this install aborts (invariant I6: a transfer
  //    either completes inside its birth epoch or restarts cleanly under the
  //    new one — contributions never mix across configurations).
  std::vector<InstanceId> aborted;
  for (const auto& [id, st] : coordinator_) {
    if (!results_.contains(id.transfer)) aborted.push_back(id);
  }
  for (const auto& [id, st] : responder_) {
    if (!st.sent_done) aborted.push_back(id);
  }

  // 2. Drain in-flight verifications, then drop ALL volatile round state —
  //    every piece of it is bound to the dying configuration.
  for (PendingVerify& pv : pending_verifies_) {
    if (pv.done.valid()) pv.done.wait();
  }
  pending_verifies_.clear();
  contributor_.clear();
  coordinator_.clear();
  sign_sessions_.clear();
  member_sessions_.clear();
  responder_.clear();
  seen_blind_.clear();
  parked_blinds_.clear();
  decrypt_reply_frames_.clear();
  client_decrypt_cache_.clear();
  responder_timer_ids_.clear();
  resends_.clear();  // cached frames carry the old epoch stamp: all dead
  result_pull_keys_.clear();
  subshare_pull_resend_ = 0;
  // Engine mirror of the abort: demote exactly the in-flight self-coordinated
  // transfers back to the head of the admission queue (they keep their
  // priority); queued and completed transfers are untouched. Step 9 re-admits
  // under the new configuration. Any armed kTimerCoordinator for a demoted
  // transfer is disarmed by the phase gate in on_timer.
  (void)engine_.abort_inflight();
  metrics_.engine_inflight.set(0);
  metrics_.engine_queued.set(engine_.queued());

  // 3. Everything that needs the OLD configuration, computed before the swap.
  std::vector<ReshareDealMsg> deals;
  std::vector<net::NodeId> dealer_nodes;
  const ServicePublic& old_svc = cfg_.service(static_cast<ServiceRole>(spec.service));
  for (const SignedMessage& deal_env : apply.deals) {
    ReshareDealMsg d = decode_as<ReshareDealMsg>(MsgType::kReshareDeal, deal_env.body);
    dealer_nodes.push_back(old_svc.node_of(d.dealer));
    deals.push_back(std::move(d));
  }
  ServicePublic new_svc = reconfigured_service(cfg_, spec, deals);

  // 4. Our own place under the new configuration.
  const bool my_service_changing = static_cast<std::uint8_t>(secrets_.role) == spec.service;
  ServerRank new_rank = secrets_.rank;
  if (my_service_changing) {
    new_rank = 0;
    for (std::size_t i = 0; i < spec.roster.size(); ++i) {
      if (spec.roster[i].node == ctx.self()) {
        new_rank = static_cast<ServerRank>(i + 1);
        break;
      }
    }
  }

  // 5. Swap the configuration and bump the epoch.
  if (static_cast<ServiceRole>(spec.service) == ServiceRole::kServiceA) {
    cfg_.a = std::move(new_svc);
  } else {
    cfg_.b = std::move(new_svc);
  }
  cfg_epoch_ = spec.epoch;
  if (my_service_changing) {
    secrets_.rank = new_rank;
    if (new_rank == 0) {
      // Retired: destroy the old shares — they are dead weight and a leak
      // hazard (proactive-security discipline; see threshold/refresh.hpp).
      secrets_.enc_share = threshold::Share{};
      secrets_.sign_share = threshold::Share{};
      share_pending_ = false;
    } else {
      share_pending_ = true;  // completed below if the sub-shares are in
    }
  }

  // 6. The invalidation cascade restore() models (PR 5), now at an epoch
  //    boundary: pinned fixed-base tables, pooled bundles, and the offline
  //    prng all die with the configuration that created them.
  cfg_.params.reset_base_caches();
  cfg_.params.pin_base(cfg_.a.encryption_key.y());
  cfg_.params.pin_base(cfg_.b.encryption_key.y());
  cfg_.params.pin_base(cfg_.params.mul(cfg_.a.encryption_key.y(), cfg_.b.encryption_key.y()));
  if (pool_ != nullptr) {
    pool_->clear();
    metrics_.pool_depth.set(0);
  }
  if (is_b()) {
    offline_prng_.emplace(ctx.rng().fork("offline-contrib/e" + std::to_string(cfg_epoch_)));
  }
  if (initial_max_coordinators_ == 0) opts_.max_coordinators = cfg_.b.cfg.f + 1;

  // 7. Record the certificate; laggards pull it one epoch at a time.
  install_log_.emplace(cfg_epoch_, InstallRecord{apply_env, std::move(echoes)});
  reconfig_round_.reset();
  applies_by_digest_.clear();
  echoes_by_digest_.clear();
  subshares_.erase(subshares_.begin(), subshares_.lower_bound({cfg_epoch_, 0}));

  // 8. Observability: aborts carry the NEW epoch ("killed by install of e").
  metrics_.config_epoch.set(cfg_epoch_);
  metrics_.reconfig_installs.inc();
  for (const InstanceId& id : aborted) {
    metrics_.reconfig_aborts.inc();
    emit_trace(ctx, obs::EventKind::kEpochAbort, &id);
  }
  emit_trace(ctx, obs::EventKind::kEpochInstall, nullptr,
             {.peer = rank(), .count = spec.n});

  // 9. Resume service. B: adopt the apply's transfer list and restart
  //    coordinators/result pulls under the new ranks (a reconfig of EITHER
  //    service cleared every armed resend above).
  if (is_b() && active() && !share_pending_) {
    for (TransferId t : apply.transfers) transfers_.insert(t);
    // Through the admission engine: the transfers demoted above re-enter from
    // the queue head first, so an install preserves admission priority.
    for (TransferId t : transfers_) schedule_coordinator(ctx, t);
    for (TransferId t : transfers_) arm_result_pull(ctx, t);
  }
  // A server retired by this install (rank 0) no longer owes progress on any
  // transfer — done messages stop reaching it, so its watchdog entries would
  // otherwise stall forever. Stop tracking instead of crying wolf.
  if (is_b() && !active()) watchdog_.reset();

  // 10. Complete our new share, or keep pulling the missing sub-shares.
  if (share_pending_) {
    maybe_complete_share(ctx);
    if (share_pending_) {
      SubsharePullMsg pull;
      pull.service = spec.service;
      pull.epoch = cfg_epoch_;
      pull.my_new_rank = secrets_.rank;
      std::vector<std::uint8_t> frame =
          frame_client(encode_body(MsgType::kSubsharePull, pull));
      Resend r;
      for (net::NodeId to : dealer_nodes) {
        if (to == ctx.self()) continue;
        ctx.send(to, frame);
        r.msgs.emplace_back(to, frame);
      }
      subshare_pull_resend_ = arm_resend(ctx, std::move(r), opts_.result_pull_delay);
    }
  }
}

void ProtocolServer::handle_reshare_subshare(net::Context& ctx,
                                             std::span<const std::uint8_t> body) {
  ReshareSubshareMsg msg;
  try {
    msg = decode_as<ReshareSubshareMsg>(MsgType::kReshareSubshare, body);
  } catch (const CodecError&) {
    return;
  }
  absorb_subshare(ctx, msg);
}

void ProtocolServer::absorb_subshare(net::Context& ctx, const ReshareSubshareMsg& msg) {
  // Keep sub-shares for the install in progress (epoch+1) or the one just
  // installed (pending members still collecting). Latest receipt wins, so a
  // garbage value cannot permanently shadow the dealer's real one — a bad
  // entry fails verification in maybe_complete_share, is dropped, and the
  // pull retries.
  if (msg.epoch != cfg_epoch_ && msg.epoch != cfg_epoch_ + 1) return;
  subshares_[{msg.epoch, msg.dealer}] = msg;
  if (share_pending_) maybe_complete_share(ctx);
}

void ProtocolServer::maybe_complete_share(net::Context& ctx) {
  if (!share_pending_) return;
  auto lit = install_log_.find(cfg_epoch_);
  if (lit == install_log_.end()) return;
  ReconfigApplyMsg apply;
  try {
    apply = decode_as<ReconfigApplyMsg>(MsgType::kReconfigApply, lit->second.apply.body);
  } catch (const CodecError&) {
    return;
  }
  std::vector<std::uint32_t> dealers;
  std::vector<mpz::Bigint> enc_subs, sign_subs;
  for (const SignedMessage& deal_env : apply.deals) {
    ReshareDealMsg deal;
    try {
      deal = decode_as<ReshareDealMsg>(MsgType::kReshareDeal, deal_env.body);
    } catch (const CodecError&) {
      return;
    }
    auto sit = subshares_.find({cfg_epoch_, deal.dealer});
    if (sit == subshares_.end()) return;  // still missing — the pull keeps running
    const ReshareSubshareMsg& sub = sit->second;
    // Verify against the CERTIFIED deal commitments (the sub-share itself is
    // an unsigned client frame; the feldman check is its authentication).
    if (sub.target_rank != secrets_.rank ||
        !threshold::reshare_verify_subshare(cfg_.params, deal.enc,
                                            {secrets_.rank, sub.enc_sub}) ||
        !threshold::reshare_verify_subshare(cfg_.params, deal.sign,
                                            {secrets_.rank, sub.sign_sub})) {
      subshares_.erase(sit);  // forged/corrupt — drop so the real one can land
      return;
    }
    dealers.push_back(deal.dealer);
    enc_subs.push_back(sub.enc_sub);
    sign_subs.push_back(sub.sign_sub);
  }
  secrets_.enc_share = threshold::reshare_apply(cfg_.params, dealers, enc_subs, secrets_.rank);
  secrets_.sign_share = threshold::reshare_apply(cfg_.params, dealers, sign_subs, secrets_.rank);
  share_pending_ = false;
  cancel_resend(subshare_pull_resend_);
  // Now a full member: start coordinating the transfers the apply carried
  // (admission-gated like every other entry point).
  if (is_b() && active()) {
    for (TransferId t : apply.transfers) transfers_.insert(t);
    for (TransferId t : transfers_) {
      schedule_coordinator(ctx, t);
      arm_result_pull(ctx, t);
    }
  }
}

void ProtocolServer::handle_wrong_epoch(net::Context& ctx, net::NodeId from,
                                        std::span<const std::uint8_t> body) {
  WrongEpochMsg msg;
  try {
    msg = decode_as<WrongEpochMsg>(MsgType::kWrongEpoch, body);
  } catch (const CodecError&) {
    return;
  }
  // The peer claims to be ahead: pull its install chain. (A forged claim
  // costs one pull round-trip and nothing else.)
  if (msg.epoch > cfg_epoch_) send_reconfig_pull(ctx, from);
}

void ProtocolServer::handle_reconfig_pull(net::Context& ctx, net::NodeId from,
                                          std::span<const std::uint8_t> body) {
  ReconfigPullMsg msg;
  try {
    msg = decode_as<ReconfigPullMsg>(MsgType::kReconfigPull, body);
  } catch (const CodecError&) {
    return;
  }
  // One epoch per reply: the puller can only validate the step its installed
  // roster signs; it re-pulls after each successful install.
  auto it = install_log_.find(msg.epoch + 1);
  if (it == install_log_.end()) return;
  ReconfigStateMsg reply;
  reply.apply = it->second.apply;
  reply.echoes = it->second.echoes;
  ctx.send(from, frame_client(encode_body(MsgType::kReconfigState, reply)));
}

void ProtocolServer::handle_reconfig_state(net::Context& ctx, net::NodeId from,
                                           std::span<const std::uint8_t> body) {
  ReconfigStateMsg msg;
  try {
    msg = decode_as<ReconfigStateMsg>(MsgType::kReconfigState, body);
  } catch (const CodecError&) {
    return;
  }
  auto apply = check_install_record(cfg_, cfg_epoch_, msg.apply, msg.echoes);
  if (!apply) return;
  install_config(ctx, msg.apply, *apply, std::move(msg.echoes));
  // Walk the chain: ask the same peer for the next epoch. Termination is
  // guaranteed because the follow-up pull happens only after an install
  // strictly advanced cfg_epoch_.
  send_reconfig_pull(ctx, from);
}

void ProtocolServer::handle_subshare_pull(net::Context& ctx, net::NodeId from,
                                          std::span<const std::uint8_t> body) {
  SubsharePullMsg msg;
  try {
    msg = decode_as<SubsharePullMsg>(MsgType::kSubsharePull, body);
  } catch (const CodecError&) {
    return;
  }
  auto fit = dealt_frames_.find(msg.epoch);
  if (fit == dealt_frames_.end()) return;
  const DealtEpoch& de = fit->second;
  if (msg.my_new_rank == 0 || msg.my_new_rank >= de.frames.size()) return;
  // Secrecy: rank j's sub-share only ever goes to the node the certified
  // roster assigns rank j — anyone else pulling it is an exfiltration probe.
  if (de.targets[msg.my_new_rank - 1] != from) return;
  resend_frame(ctx, from, de.frames[msg.my_new_rank]);
}

// --- crash recovery -----------------------------------------------------------

namespace {
constexpr std::uint8_t kSnapshotVersion = 1;
}  // namespace

std::vector<std::uint8_t> ProtocolServer::snapshot() const {
  Writer w;
  w.u8(kSnapshotVersion);
  w.u32(static_cast<std::uint32_t>(stored_.size()));
  for (const auto& [t, c] : stored_) {
    w.u64(t);
    put_ciphertext(w, c);
  }
  w.u32(static_cast<std::uint32_t>(pending_store_.size()));
  for (const auto& [t, p] : pending_store_) {
    w.u64(t);
    put_ciphertext(w, p.first);
    w.u64(p.second);
  }
  w.u32(static_cast<std::uint32_t>(transfers_.size()));
  for (TransferId t : transfers_) w.u64(t);
  w.u32(static_cast<std::uint32_t>(next_epoch_.size()));
  for (const auto& [t, e] : next_epoch_) {
    w.u64(t);
    w.u32(e);
  }
  std::uint32_t done_count = 0;
  for (const auto& [t, v] : done_msgs_) done_count += static_cast<std::uint32_t>(v.size());
  w.u32(done_count);
  for (const auto& [t, v] : done_msgs_) {
    for (const ServiceSignedMsg& m : v) m.encode(w);
  }
  return w.take();
}

void ProtocolServer::restore(std::span<const std::uint8_t> snap) {
  // A crash loses everything volatile: round state, signing sessions, reply
  // caches, armed retransmissions, parked messages, and derived results.
  // In-flight pool verifications must finish before their slots are dropped.
  for (PendingVerify& pv : pending_verifies_) {
    if (pv.done.valid()) pv.done.wait();
  }
  pending_verifies_.clear();
  stored_.clear();
  pending_store_.clear();
  transfers_.clear();
  results_.clear();
  done_msgs_.clear();
  done_payloads_.clear();
  parked_blinds_.clear();
  contributor_.clear();
  coordinator_.clear();
  sign_sessions_.clear();
  member_sessions_.clear();
  responder_.clear();
  seen_blind_.clear();
  resends_.clear();
  result_pull_keys_.clear();
  next_epoch_.clear();
  decrypt_reply_frames_.clear();
  client_decrypt_cache_.clear();
  responder_timer_ids_.clear();
  results_count_.store(0, std::memory_order_release);
  // Pooled bundles hold secrets (ρ and proof nonces) that were never durable:
  // drop them all. on_start re-forks the offline prng and refills. Bundle ids
  // keep counting up across incarnations so no id is ever consumed twice.
  if (pool_ != nullptr) pool_->clear();
  metrics_.pool_depth.set(0);
  pool_timer_armed_ = false;
  offline_prng_.reset();
  // Admission scheduling is volatile; on_start re-feeds it from the restored
  // transfer set. The per-instance rng root dies with the incarnation so a
  // recovered server never replays an instance stream it may have used.
  engine_.reset();
  metrics_.engine_inflight.set(0);
  metrics_.engine_queued.set(0);
  instance_rng_root_.reset();
  // Watchdog entries (and a possibly-pending sweep timer) die with the
  // incarnation; on_start re-arms from the restored transfer set. A stall
  // observed pre-crash therefore resolves via the transfer's eventual
  // kDoneRecorded, not a kStallResolved (the chaos checker accepts both).
  watchdog_.reset();
  watchdog_timer_armed_ = false;
  // scheduled_arrivals_ is pre-simulation setup like scheduled_reconfigs_:
  // kept, so on_start re-arms it (the arrival handler dedupes via transfers_).
  // Installed configurations are volatile too: a recovered server restarts at
  // the SEED configuration (epoch 0) with its construction-time share, and
  // re-learns the install chain from peers via the epoch gate + pull path. A
  // server that crashed in epoch e and recovers after e+1 installed therefore
  // never acts on its stale share: its first stamped message draws a
  // kWrongEpoch, it pulls the certificates, installs them in order, and
  // rejoins (or retires) under the current roster.
  cfg_ = initial_cfg_;
  secrets_ = initial_secrets_;
  cfg_epoch_ = 0;
  opts_.max_coordinators =
      initial_max_coordinators_ == 0 ? initial_cfg_.b.cfg.f + 1 : initial_max_coordinators_;
  reconfig_round_.reset();
  applies_by_digest_.clear();
  echoes_by_digest_.clear();
  subshares_.clear();
  dealt_frames_.clear();
  install_log_.clear();
  share_pending_ = false;
  subshare_pull_resend_ = 0;
  restored_ = true;  // on_start pulls the install chain proactively
  // scheduled_reconfigs_ is pre-simulation setup, not runtime state: kept, so
  // on_start re-arms it (the timer handler skips already-installed epochs).
  if (snap.empty()) return;

  // Parse into locals and commit only on full success: a corrupt snapshot
  // recovers with EMPTY durable state, never a partial one (and never throws).
  try {
    Reader r(snap);
    if (r.u8() != kSnapshotVersion) return;
    std::map<TransferId, elgamal::Ciphertext> stored;
    for (std::uint32_t i = 0, n = r.count(8); i < n; ++i) {
      TransferId t = r.u64();
      stored[t] = get_ciphertext(r);
    }
    std::map<TransferId, std::pair<elgamal::Ciphertext, net::Time>> pending;
    for (std::uint32_t i = 0, n = r.count(8); i < n; ++i) {
      TransferId t = r.u64();
      elgamal::Ciphertext c = get_ciphertext(r);
      net::Time when = r.u64();
      pending[t] = {std::move(c), when};
    }
    std::set<TransferId> transfers;
    for (std::uint32_t i = 0, n = r.count(8); i < n; ++i) transfers.insert(r.u64());
    std::map<TransferId, std::uint32_t> next_epoch;
    for (std::uint32_t i = 0, n = r.count(8); i < n; ++i) {
      TransferId t = r.u64();
      next_epoch[t] = r.u32();
    }
    std::vector<ServiceSignedMsg> dones;
    for (std::uint32_t i = 0, n = r.count(8); i < n; ++i) {
      dones.push_back(ServiceSignedMsg::decode(r));
    }
    r.expect_done();

    stored_ = std::move(stored);
    pending_store_ = std::move(pending);
    transfers_ = std::move(transfers);
    next_epoch_ = std::move(next_epoch);
    // Rebuild results from the durable done messages, re-validating each one
    // (a snapshot is data, not an authority on signature validity).
    for (const ServiceSignedMsg& m : dones) {
      auto done = check_done(cfg_, m);
      if (done) record_done(nullptr, *done, m);
    }
  } catch (const CodecError&) {
  }
}

// --- observability -----------------------------------------------------------

void ProtocolServer::emit_trace(net::Context& ctx, obs::EventKind kind, const InstanceId* id) {
  emit_trace(ctx, kind, id, TraceExtras{});
}

void ProtocolServer::emit_trace(net::Context& ctx, obs::EventKind kind, const InstanceId* id,
                                const TraceExtras& extra) {
  if (opts_.trace == nullptr) return;
  obs::TraceEvent ev;
  ev.ts = ctx.now();
  ev.node = ctx.self();
  ev.kind = kind;
  if (id != nullptr) {
    ev.has_instance = true;
    ev.transfer = id->transfer;
    ev.coordinator = id->coordinator;
    ev.epoch = id->epoch;
  } else {
    ev.transfer = extra.transfer;
  }
  ev.peer = extra.peer;
  ev.subject = extra.subject;
  ev.count = extra.count;
  ev.attempt = extra.attempt;
  ev.cap = extra.cap;
  ev.cfg_epoch = cfg_epoch_;
  // Causal chaining: every protocol event is a span whose parent is the
  // ambient span (the message delivery, timer restore, or preceding protocol
  // event that caused it). The event then becomes the ambient span itself, so
  // later events in the same handler — and any sends or timers it arms —
  // descend from it. With tracing off mint_span() returns 0 and the
  // recorder was never reached, so this path stays dormant.
  ev.span = ctx.mint_span();
  ev.parent = ctx.current_span();
  ctx.set_current_span(ev.span);
  opts_.trace->record(ev);
  watchdog_note(ctx, ev);
}

void ProtocolServer::watchdog_note(net::Context& ctx, const obs::TraceEvent& ev) {
  // B roster members only: A servers and retired/standby servers (rank 0)
  // never owe a done record, so tracking them would manufacture stalls.
  if (!watchdog_.enabled() || !is_b() || !active() || ev.transfer == 0) return;
  std::optional<obs::Watchdog::Resolution> res;
  if (ev.kind == obs::EventKind::kDoneRecorded) {
    res = watchdog_.complete(ev.transfer, ev.ts);
  } else if (!results_.contains(ev.transfer)) {
    // Refresh (or implicitly arm — late arrivals, epoch re-admissions) the
    // transfer's deadline. Completed transfers are excluded: stray traffic
    // for them (duplicated frames, peers' retransmits) must not resurrect a
    // tracking entry that nothing will ever complete again.
    res = watchdog_.progress(ev.transfer, ev.ts, ev.span);
  }
  // A freshly (implicitly) armed entry may need the sweep timer running.
  arm_watchdog_timer(ctx);
  if (!res.has_value()) return;
  // Emitted directly (not via emit_trace) so the hook cannot re-enter.
  obs::TraceEvent out;
  out.ts = ev.ts;
  out.node = ev.node;
  out.kind = obs::EventKind::kStallResolved;
  out.transfer = res->transfer;
  out.count = res->stalled_us;
  out.cfg_epoch = cfg_epoch_;
  out.span = ctx.mint_span();
  out.parent = ev.span;  // the resolution descends from the resolving event
  opts_.trace->record(out);
}

void ProtocolServer::arm_watchdog_timer(net::Context& ctx) {
  if (watchdog_timer_armed_ || opts_.trace == nullptr) return;
  if (!watchdog_.needs_sweep()) return;
  watchdog_timer_armed_ = true;
  // Half the deadline bounds detection latency at 1.5× the idle bound.
  ctx.set_timer(watchdog_.deadline() / 2, kTimerWatchdog);
}

void ProtocolServer::watchdog_tick(net::Context& ctx) {
  watchdog_timer_armed_ = false;
  if (opts_.trace != nullptr) {
    for (const obs::Watchdog::Stall& s : watchdog_.expired(ctx.now())) {
      obs::TraceEvent ev;
      ev.ts = ctx.now();
      ev.node = ctx.self();
      ev.kind = obs::EventKind::kStall;
      ev.transfer = s.transfer;
      // One-shot public state dump: engine queue depth, pending verify jobs,
      // outstanding retransmission entries. Counts only — never payloads.
      ev.count = engine_.queued();
      ev.peer = static_cast<std::uint32_t>(pending_verifies_.size());
      ev.attempt = static_cast<std::uint32_t>(resends_.size());
      ev.cfg_epoch = cfg_epoch_;
      ev.span = ctx.mint_span();
      // The transfer's latest span: walking its parent chain reconstructs the
      // span stack the transfer stalled under.
      ev.parent = s.last_span;
      opts_.trace->record(ev);
    }
  }
  arm_watchdog_timer(ctx);
}

void ProtocolServer::resolve_metrics(net::Context& ctx) {
  if (metrics_.resolved || opts_.metrics == nullptr) return;
  metrics_.resolved = true;
  obs::MetricsRegistry& reg = *opts_.metrics;
  const std::string node = std::to_string(ctx.self());
  for (std::size_t i = 1; i < Metrics::kTypes; ++i) {
    obs::LabelSet by_type{{"node", node}, {"type", msg_type_name(static_cast<MsgType>(i))}};
    metrics_.rx_msgs[i] = reg.counter("dblind_rx_messages_total", by_type);
    metrics_.rx_bytes[i] = reg.counter("dblind_rx_bytes_total", by_type);
    metrics_.mont_muls[i] = reg.counter("dblind_handler_mont_muls_total", by_type);
    metrics_.handler_wall_us[i] = reg.histogram("dblind_handler_wall_us", by_type,
                                                {10, 100, 1'000, 10'000, 100'000});
  }
  const obs::LabelSet by_node{{"node", node}};
  const std::vector<std::uint64_t> lat{1'000,   10'000,    100'000,
                                       400'000, 1'600'000, 6'400'000};
  metrics_.phase_commit_us = reg.histogram("dblind_phase_commit_us", by_node, lat);
  metrics_.phase_contribute_us = reg.histogram("dblind_phase_contribute_us", by_node, lat);
  metrics_.phase_blind_sign_us = reg.histogram("dblind_phase_blind_sign_us", by_node, lat);
  metrics_.phase_decrypt_us = reg.histogram("dblind_phase_decrypt_us", by_node, lat);
  metrics_.phase_done_sign_us = reg.histogram("dblind_phase_done_sign_us", by_node, lat);
  metrics_.verify_pass = reg.counter("dblind_verify_total", {{"node", node}, {"result", "pass"}});
  metrics_.verify_fail = reg.counter("dblind_verify_total", {{"node", node}, {"result", "fail"}});
  metrics_.batch_fallbacks = reg.counter("dblind_batch_verify_fallbacks_total", by_node);
  metrics_.verify_queue_depth =
      reg.histogram("dblind_verify_queue_depth", by_node, {0, 1, 2, 4, 8, 16, 32});
  metrics_.verify_drain_batch =
      reg.histogram("dblind_verify_drain_batch", by_node, {1, 2, 4, 8, 16, 32});
  // Pre-existing counters migrate onto the registry as attached (read-only)
  // series: the registry samples the live cells, the owners keep updating
  // them exactly as before.
  reg.attach_counter("dblind_retransmits_sent_total", by_node, &retransmits_sent_);
  reg.attach_counter("dblind_mont_muls_total", {}, cfg_.params.mont_mul_cell());
  // Backend-labelled view of the same op counter plus its word-mul weight:
  // lets offline tooling (trace_critpath) attribute crypto cost to the
  // active group backend instead of assuming mod-p Montgomery muls.
  reg.attach_counter("dblind_group_ops_total",
                     {{"backend", std::string(cfg_.params.backend_name())}},
                     cfg_.params.group_op_cell());
  reg.gauge("dblind_group_op_weight",
            {{"backend", std::string(cfg_.params.backend_name())}})
      .set(cfg_.params.op_cost_weight());
  reg.attach_counter("dblind_batch_verify_combined_total", {},
                     &zkp::batch_verify_counts().combined);
  reg.attach_counter("dblind_batch_verify_rejected_total", {},
                     &zkp::batch_verify_counts().rejected);
  if (verify_pool_ != nullptr) {
    verify_pool_->set_metrics(reg.counter("dblind_verify_pool_jobs_total", by_node),
                              reg.gauge("dblind_verify_pool_depth", by_node));
  }
  metrics_.pool_depth = reg.gauge("dblind_pool_depth", by_node);
  metrics_.pool_refills =
      reg.counter("dblind_pool_events_total", {{"node", node}, {"event", "refill"}});
  metrics_.pool_drains =
      reg.counter("dblind_pool_events_total", {{"node", node}, {"event", "drain"}});
  metrics_.pool_fallbacks =
      reg.counter("dblind_pool_events_total", {{"node", node}, {"event", "fallback"}});
  metrics_.contrib_mont_muls_online =
      reg.counter("dblind_contrib_mont_muls_total", {{"node", node}, {"path", "online"}});
  metrics_.contrib_mont_muls_offline =
      reg.counter("dblind_contrib_mont_muls_total", {{"node", node}, {"path", "offline"}});
  metrics_.config_epoch = reg.gauge("dblind_config_epoch", by_node);
  metrics_.reconfig_installs =
      reg.counter("dblind_reconfig_events_total", {{"node", node}, {"event", "install"}});
  metrics_.reconfig_aborts =
      reg.counter("dblind_reconfig_events_total", {{"node", node}, {"event", "abort"}});
  metrics_.reconfig_stale_rejects =
      reg.counter("dblind_reconfig_events_total", {{"node", node}, {"event", "stale_reject"}});
  metrics_.engine_inflight = reg.gauge("dblind_engine_inflight", by_node);
  metrics_.engine_queued = reg.gauge("dblind_engine_queued", by_node);
  metrics_.engine_admits =
      reg.counter("dblind_engine_events_total", {{"node", node}, {"event", "admit"}});
  metrics_.engine_defers =
      reg.counter("dblind_engine_events_total", {{"node", node}, {"event", "defer"}});
  metrics_.cross_drain_msgs =
      reg.histogram("dblind_cross_drain_msgs", by_node, {1, 2, 4, 8, 16, 32});
  metrics_.cross_drain_equations =
      reg.histogram("dblind_cross_drain_equations", by_node, {3, 6, 12, 24, 48, 96});
}

}  // namespace dblind::core
