// Epochal reconfiguration: validity rules and config derivation.
//
// The reconfiguration round (docs/PROTOCOL.md "Reconfiguration") installs a
// new roster and/or threshold for one service by re-sharing its key shares
// (threshold/reshare.hpp) onto the target roster, then certifying ONE apply
// proposal with a Bracha-style quorum of 2f+1 old-roster echoes. This header
// holds the pure, stateless validity checks — the moral equivalent of
// core/validity.hpp for the reconfiguration messages — plus the derivation
// of the post-install ServicePublic. ProtocolServer (core/server.cpp) owns
// the round state and the install cascade.
//
// Validity is always judged against the configuration installed at epoch
// `current`: a deal/apply/echo for epoch e+1 is signed with epoch-e roster
// keys and stamped cfg_epoch = e. A lagging node therefore catches up
// inductively, replaying one InstallRecord per epoch and validating each
// against the roster the previous record installed.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/messages.hpp"
#include "core/validity.hpp"

namespace dblind::core {

// What echoes certify: SHA-256 over the apply envelope's BODY bytes (the
// type-tagged ReconfigApplyMsg encoding). Signer-independent, so two
// coordinators proposing byte-identical configurations echo-merge.
[[nodiscard]] hash::Digest reconfig_apply_digest(const SignedMessage& apply_env);

// Structural validity of a spec against the installed config: epoch is
// exactly current+1, the service role is known, (n', f') is Byzantine-safe
// (3f'+1 <= n', f' >= 1), the roster has n' entries with distinct transport
// nodes, and every roster sign key is a group element (so building
// SchnorrVerifyKeys later cannot throw on hostile input).
[[nodiscard]] bool reconfig_spec_ok(const SystemConfig& cfg, ConfigEpoch current,
                                    const ReconfigSpec& spec);

// Checks a kReshareDeal envelope against the installed config and the spec
// being voted on: old-roster signature over cfg_epoch = current, matching
// service/epoch, dealer == signer, and both commitment vectors pass
// reshare_verify_commitments against the service's current commitments
// (constant term = the dealer's old verification key — a dealer cannot
// re-share a value other than its real share).
[[nodiscard]] std::optional<ReshareDealMsg> check_reshare_deal(const SystemConfig& cfg,
                                                               ConfigEpoch current,
                                                               const ReconfigSpec& spec,
                                                               const SignedMessage& env);

// Validates a kReconfigApply envelope against the config installed at
// `current`: old-roster coordinator signature, well-formed spec for
// current+1, exactly old-f+1 deal envelopes from strictly increasing old
// dealer ranks, each individually valid per check_reshare_deal. Returns the
// decoded message iff everything holds.
[[nodiscard]] std::optional<ReconfigApplyMsg> check_reconfig_apply(const SystemConfig& cfg,
                                                                   ConfigEpoch current,
                                                                   const SignedMessage& env);

// Validates one epoch's install certificate (a ReconfigStateMsg step or an
// InstallRecord): the apply per check_reconfig_apply plus at least 2f+1 echo
// envelopes from distinct old-roster ranks of the changing service, each
// signed over cfg_epoch = current and echoing exactly this apply's digest
// and epoch. Returns the decoded apply iff certified.
[[nodiscard]] std::optional<ReconfigApplyMsg> check_install_record(
    const SystemConfig& cfg, ConfigEpoch current, const SignedMessage& apply_env,
    std::span<const SignedMessage> echoes);

// The dealer quorum (old ranks, in envelope order) of a valid apply.
[[nodiscard]] std::vector<std::uint32_t> deal_quorum(const std::vector<ReshareDealMsg>& deals);

// Derives the post-install public view of the changing service from a valid
// apply: new (n', f'), joint re-shared commitments (public key unchanged —
// reshare_commitments keeps C'_0 = g^s), the roster's per-server sign keys,
// and the explicit rank→node map. Everything here is public information;
// every node, member or not, computes the identical result.
[[nodiscard]] ServicePublic reconfigured_service(const SystemConfig& cfg,
                                                 const ReconfigSpec& spec,
                                                 const std::vector<ReshareDealMsg>& deals);

// One installed epoch's self-certifying record, kept by every node so
// laggards can pull the full install chain (kReconfigPull/kReconfigState).
struct InstallRecord {
  SignedMessage apply;                // the certified kReconfigApply envelope
  std::vector<SignedMessage> echoes;  // 2f+1 kReconfigEcho envelopes
};

}  // namespace dblind::core
