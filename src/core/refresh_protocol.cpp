#include "core/refresh_protocol.hpp"

#include <algorithm>

#include "mpz/modmath.hpp"
#include "zkp/transcript.hpp"

namespace dblind::core {

namespace {

enum class RfType : std::uint8_t {
  kInit = 1,
  kDeal = 2,
  kApply = 3,
  kEcho = 4,
  kFetch = 5,
  kFetchReply = 6,
};

void put_refresh_deal(Writer& w, const threshold::RefreshDeal& deal) {
  w.u32(deal.dealer);
  w.u32(static_cast<std::uint32_t>(deal.commitments.coefficients.size()));
  for (const mpz::Bigint& c : deal.commitments.coefficients) w.bigint(c);
  w.u32(static_cast<std::uint32_t>(deal.subshares.size()));
  for (const threshold::Share& s : deal.subshares) {
    w.u32(s.index);
    w.bigint(s.value);
  }
}

threshold::RefreshDeal get_refresh_deal(Reader& r) {
  threshold::RefreshDeal deal;
  deal.dealer = r.u32();
  std::uint32_t nc = r.count();
  for (std::uint32_t i = 0; i < nc; ++i) deal.commitments.coefficients.push_back(r.bigint());
  std::uint32_t ns = r.count();
  for (std::uint32_t i = 0; i < ns; ++i) {
    threshold::Share s;
    s.index = r.u32();
    s.value = r.bigint();
    deal.subshares.push_back(std::move(s));
  }
  return deal;
}

void put_deal_set(Writer& w, const std::vector<threshold::RefreshDeal>& deals) {
  w.u32(static_cast<std::uint32_t>(deals.size()));
  for (const threshold::RefreshDeal& d : deals) put_refresh_deal(w, d);
}

std::vector<threshold::RefreshDeal> get_deal_set(Reader& r) {
  std::uint32_t n = r.count();
  std::vector<threshold::RefreshDeal> deals;
  for (std::uint32_t i = 0; i < n; ++i) deals.push_back(get_refresh_deal(r));
  return deals;
}

hash::Digest deal_set_digest(std::uint32_t coordinator,
                             const std::vector<threshold::RefreshDeal>& deals) {
  Writer w;
  w.u32(coordinator);
  put_deal_set(w, deals);
  zkp::Transcript t("dblind/refresh/apply-set/v1");
  t.absorb_bytes(w.view());
  return t.digest();
}

// Signed envelope local to the refresh protocol.
struct RfEnvelope {
  std::uint32_t signer = 0;
  std::vector<std::uint8_t> body;
  zkp::SchnorrSignature sig;

  void encode(Writer& w) const {
    w.u32(signer);
    w.bytes(body);
    put_schnorr_sig(w, sig);
  }
  static RfEnvelope decode(Reader& r) {
    RfEnvelope e;
    e.signer = r.u32();
    e.body = r.bytes();
    e.sig = get_schnorr_sig(r);
    return e;
  }
};

}  // namespace

// Roles per node: dealer (on init), refresh coordinator (designated/backup),
// echo participant, and applier. The echo/fetch pair gives agreement +
// totality per coordinator instance:
//   * a correct server echoes at most one apply-set per coordinator, so at
//     most one set per coordinator can collect 2f+1 echoes (quorum
//     intersection contains a correct server);
//   * once ANY correct server holds 2f+1 echoes, every correct server
//     eventually does (echoes are broadcast), and servers that never saw the
//     set's content fetch it from an echoer (≥ f+1 of the echoers are
//     correct and hold it).
// Sets from different coordinators commute (each is a sharing of zero), so
// applying the union preserves the key at every server.
class RefreshSystem::ServerNode final : public net::Node {
 public:
  ServerNode(RefreshSystem& sys, std::uint32_t rank)
      : sys_(sys),
        rank_(rank),
        share_(sys.material_->share_of(rank)),
        commitments_(sys.material_->commitments()) {}

  void on_start(net::Context& ctx) override {
    if (rank_ > sys_.opts_.cfg.f + 1) return;  // not a (backup) coordinator
    net::Time delay = (rank_ - 1) * sys_.opts_.backup_delay;
    if (delay == 0) {
      start_instance(ctx);
    } else {
      ctx.set_timer(delay, 0);
    }
  }

  void on_timer(net::Context& ctx, std::uint64_t) override {
    // Backup coordinators only act if nothing has been applied yet.
    if (applied_.empty()) start_instance(ctx);
  }

  void on_message(net::Context& ctx, net::NodeId from,
                  std::span<const std::uint8_t> bytes) override {
    (void)from;
    try {
      Reader r(bytes);
      RfEnvelope env = RfEnvelope::decode(r);
      r.expect_done();
      if (env.signer == 0 || env.signer > sys_.opts_.cfg.n) return;
      if (!sys_.server_vkeys_[env.signer - 1].verify(env.body, env.sig)) return;
      Reader br(env.body);
      auto type = static_cast<RfType>(br.u8());
      switch (type) {
        case RfType::kInit: {
          std::uint32_t coordinator = br.u32();
          br.expect_done();
          if (coordinator != env.signer) return;
          handle_init(ctx, coordinator);
          break;
        }
        case RfType::kDeal: {
          threshold::RefreshDeal deal = get_refresh_deal(br);
          br.expect_done();
          if (deal.dealer != env.signer) return;
          handle_deal(ctx, std::move(deal));
          break;
        }
        case RfType::kApply: {
          std::uint32_t coordinator = br.u32();
          std::vector<threshold::RefreshDeal> deals = get_deal_set(br);
          br.expect_done();
          if (coordinator != env.signer) return;
          handle_apply(ctx, coordinator, std::move(deals));
          break;
        }
        case RfType::kEcho: {
          std::uint32_t coordinator = br.u32();
          hash::Digest digest = br.digest();
          br.expect_done();
          handle_echo(ctx, env.signer, coordinator, digest);
          break;
        }
        case RfType::kFetch: {
          std::uint32_t coordinator = br.u32();
          hash::Digest digest = br.digest();
          br.expect_done();
          handle_fetch(ctx, env.signer, coordinator, digest);
          break;
        }
        case RfType::kFetchReply: {
          std::uint32_t coordinator = br.u32();
          std::vector<threshold::RefreshDeal> deals = get_deal_set(br);
          br.expect_done();
          handle_apply(ctx, coordinator, std::move(deals));  // same validation path
          break;
        }
        default:
          break;
      }
    } catch (const CodecError&) {
      // garbage == loss
    }
  }

  [[nodiscard]] bool applied_any() const { return !applied_.empty(); }
  [[nodiscard]] const std::map<std::uint32_t, hash::Digest>& applied() const { return applied_; }
  [[nodiscard]] const threshold::Share& share() const { return share_; }
  [[nodiscard]] const threshold::FeldmanCommitments& commitments() const { return commitments_; }

 private:
  void send_env(net::Context& ctx, net::NodeId to, const std::vector<std::uint8_t>& body) {
    RfEnvelope env;
    env.signer = rank_;
    env.body = body;
    env.sig = sys_.server_keys_[rank_ - 1].sign(body, ctx.rng());
    Writer w;
    env.encode(w);
    ctx.send(to, w.take());
  }

  void broadcast_env(net::Context& ctx, const std::vector<std::uint8_t>& body) {
    for (std::uint32_t j = 1; j <= sys_.opts_.cfg.n; ++j) send_env(ctx, j - 1, body);
  }

  void start_instance(net::Context& ctx) {
    coordinating_ = true;
    Writer w;
    w.u8(static_cast<std::uint8_t>(RfType::kInit));
    w.u32(rank_);
    broadcast_env(ctx, w.view());
  }

  void handle_init(net::Context& ctx, std::uint32_t coordinator) {
    if (!dealt_to_.insert(coordinator).second) return;  // deal once per instance
    const auto& o = sys_.opts_;
    threshold::RefreshDeal deal =
        threshold::refresh_deal(o.params, rank_, o.cfg.n, o.cfg.f, ctx.rng());
    if (o.bad_dealers.contains(rank_)) {
      deal.subshares[0].value =
          mpz::addmod(deal.subshares[0].value, mpz::Bigint(1), o.params.q());
    }
    Writer w;
    w.u8(static_cast<std::uint8_t>(RfType::kDeal));
    put_refresh_deal(w, deal);
    send_env(ctx, coordinator - 1, w.view());
  }

  void handle_deal(net::Context& ctx, threshold::RefreshDeal deal) {
    if (!coordinating_ || sent_apply_) return;
    const auto& o = sys_.opts_;
    for (std::uint32_t j = 1; j <= o.cfg.n; ++j) {
      if (!threshold::refresh_verify(o.params, deal, j)) return;  // invalid deal: drop
    }
    deals_.emplace(deal.dealer, std::move(deal));
    if (deals_.size() < o.cfg.quorum()) return;
    sent_apply_ = true;

    std::vector<threshold::RefreshDeal> chosen;
    for (const auto& [dealer, d] : deals_) {
      if (chosen.size() == o.cfg.quorum()) break;
      chosen.push_back(d);
    }

    if (o.equivocating_coordinator && rank_ == 1 && deals_.size() > o.cfg.quorum()) {
      // Byzantine split: different (individually valid) sets to different
      // servers. The echo quorum prevents divergence.
      std::vector<threshold::RefreshDeal> other;
      for (auto it = deals_.rbegin(); it != deals_.rend(); ++it) {
        if (other.size() == o.cfg.quorum()) break;
        other.push_back(it->second);
      }
      for (std::uint32_t j = 1; j <= o.cfg.n; ++j) {
        const auto& set = (j % 2 == 0) ? chosen : other;
        Writer w;
        w.u8(static_cast<std::uint8_t>(RfType::kApply));
        w.u32(rank_);
        put_deal_set(w, set);
        send_env(ctx, j - 1, w.view());
      }
      return;
    }

    Writer w;
    w.u8(static_cast<std::uint8_t>(RfType::kApply));
    w.u32(rank_);
    put_deal_set(w, chosen);
    broadcast_env(ctx, w.view());
  }

  // Validates a full apply-set; returns its digest if acceptable.
  std::optional<hash::Digest> validate_set(std::uint32_t coordinator,
                                           const std::vector<threshold::RefreshDeal>& deals) {
    const auto& o = sys_.opts_;
    if (coordinator == 0 || coordinator > o.cfg.n) return std::nullopt;
    if (deals.size() != o.cfg.quorum()) return std::nullopt;
    std::set<std::uint32_t> dealers;
    for (const threshold::RefreshDeal& d : deals) {
      if (!dealers.insert(d.dealer).second) return std::nullopt;
      for (std::uint32_t j = 1; j <= o.cfg.n; ++j) {
        if (!threshold::refresh_verify(o.params, d, j)) return std::nullopt;
      }
    }
    return deal_set_digest(coordinator, deals);
  }

  void handle_apply(net::Context& ctx, std::uint32_t coordinator,
                    std::vector<threshold::RefreshDeal> deals) {
    auto digest = validate_set(coordinator, deals);
    if (!digest) return;
    sets_[*digest] = std::move(deals);
    // Echo at most one set per coordinator instance.
    if (echoed_for_.insert(coordinator).second) {
      Writer w;
      w.u8(static_cast<std::uint8_t>(RfType::kEcho));
      w.u32(coordinator);
      w.digest(*digest);
      broadcast_env(ctx, w.view());
      // Count own echo locally too.
      echoes_[{coordinator, *digest}].insert(rank_);
    }
    maybe_apply(ctx);
  }

  void handle_echo(net::Context& ctx, std::uint32_t from_rank, std::uint32_t coordinator,
                   const hash::Digest& digest) {
    echoes_[{coordinator, digest}].insert(from_rank);
    maybe_apply(ctx);
  }

  void handle_fetch(net::Context& ctx, std::uint32_t from_rank, std::uint32_t coordinator,
                    const hash::Digest& digest) {
    auto it = sets_.find(digest);
    if (it == sets_.end()) return;
    Writer w;
    w.u8(static_cast<std::uint8_t>(RfType::kFetchReply));
    w.u32(coordinator);
    put_deal_set(w, it->second);
    send_env(ctx, from_rank - 1, w.view());
  }

  void maybe_apply(net::Context& ctx) {
    const std::size_t need = 2 * sys_.opts_.cfg.f + 1;
    for (const auto& [key, echoers] : echoes_) {
      const auto& [coordinator, digest] = key;
      if (echoers.size() < need) continue;
      if (applied_.contains(coordinator)) continue;
      auto sit = sets_.find(digest);
      if (sit == sets_.end()) {
        // Quorum formed but content unseen (equivocating coordinator sent us
        // a different set): fetch from echoers; at least f+1 are correct.
        if (fetched_.insert(digest).second) {
          Writer w;
          w.u8(static_cast<std::uint8_t>(RfType::kFetch));
          w.u32(coordinator);
          w.digest(digest);
          for (std::uint32_t e : echoers) {
            if (e != rank_) send_env(ctx, e - 1, w.view());
          }
        }
        continue;
      }
      applied_.emplace(coordinator, digest);
      share_ = threshold::refresh_apply(sys_.opts_.params, share_, sit->second);
      commitments_ =
          threshold::refresh_commitments(sys_.opts_.params, commitments_, sit->second);
    }
  }

  RefreshSystem& sys_;
  std::uint32_t rank_;
  threshold::Share share_;
  threshold::FeldmanCommitments commitments_;
  bool coordinating_ = false;
  bool sent_apply_ = false;
  std::set<std::uint32_t> dealt_to_;
  std::set<std::uint32_t> echoed_for_;
  std::map<std::uint32_t, threshold::RefreshDeal> deals_;
  std::map<hash::Digest, std::vector<threshold::RefreshDeal>> sets_;
  std::map<std::pair<std::uint32_t, hash::Digest>, std::set<std::uint32_t>> echoes_;
  std::set<hash::Digest> fetched_;
  std::map<std::uint32_t, hash::Digest> applied_;  // coordinator -> set digest
};

RefreshSystem::RefreshSystem(RefreshSystemOptions opts) : opts_(std::move(opts)) {
  mpz::Prng setup(opts_.seed ^ 0xcafe);
  material_ = std::make_unique<threshold::ServiceKeyMaterial>(
      threshold::ServiceKeyMaterial::dealer_keygen(opts_.params, opts_.cfg, setup));
  for (std::uint32_t r = 1; r <= opts_.cfg.n; ++r) {
    server_keys_.push_back(zkp::SchnorrSigningKey::generate(opts_.params, setup));
    server_vkeys_.push_back(server_keys_.back().verify_key());
  }
  sim_ = std::make_unique<net::Simulator>(
      opts_.seed, std::make_unique<net::UniformDelay>(opts_.delay_min, opts_.delay_max));
  for (std::uint32_t r = 1; r <= opts_.cfg.n; ++r) {
    auto node = std::make_unique<ServerNode>(*this, r);
    nodes_.push_back(node.get());
    net::NodeId id = sim_->add_node(std::move(node));
    if (opts_.crashed.contains(r)) sim_->crash_at(id, 0);
  }
}

RefreshSystem::~RefreshSystem() = default;

bool RefreshSystem::run(std::uint64_t max_events) {
  // Done when every live server has applied the SAME non-empty collection of
  // apply-sets (per-coordinator agreement + totality).
  auto done = [&] {
    const std::map<std::uint32_t, hash::Digest>* reference = nullptr;
    for (std::uint32_t r = 1; r <= opts_.cfg.n; ++r) {
      if (opts_.crashed.contains(r)) continue;
      const ServerNode* node = nodes_[r - 1];
      if (!node->applied_any()) return false;
      if (reference == nullptr) {
        reference = &node->applied();
      } else if (node->applied() != *reference) {
        return false;
      }
    }
    return reference != nullptr;
  };
  return sim_->run_until(done, max_events);
}

std::optional<threshold::Share> RefreshSystem::new_share(std::uint32_t rank) const {
  const ServerNode* node = nodes_.at(rank - 1);
  if (!node->applied_any()) return std::nullopt;
  return node->share();
}

std::optional<threshold::FeldmanCommitments> RefreshSystem::new_commitments(
    std::uint32_t rank) const {
  const ServerNode* node = nodes_.at(rank - 1);
  if (!node->applied_any()) return std::nullopt;
  return node->commitments();
}

}  // namespace dblind::core
