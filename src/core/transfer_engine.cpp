#include "core/transfer_engine.hpp"

#include <algorithm>

namespace dblind::core {

TransferEngine::TransferEngine(Options opts)
    : max_inflight_(opts.max_inflight), shards_(std::max<std::size_t>(1, opts.shards)) {}

void TransferEngine::set_phase(TransferId t, TransferPhase p) const {
  Shard& s = shard_of(t);
  MutexLock lock(s.mu);
  for (auto& [id, rec] : s.records) {
    if (id == t) {
      rec.phase = p;
      return;
    }
  }
  s.records.emplace_back(t, Record{p});
}

TransferPhase TransferEngine::get_phase(TransferId t) const {
  Shard& s = shard_of(t);
  MutexLock lock(s.mu);
  for (const auto& [id, rec] : s.records) {
    if (id == t) return rec.phase;
  }
  return TransferPhase::kRegistered;
}

void TransferEngine::register_transfer(TransferId t) {
  Shard& s = shard_of(t);
  MutexLock lock(s.mu);
  for (const auto& [id, rec] : s.records) {
    if (id == t) return;
  }
  s.records.emplace_back(t, Record{TransferPhase::kRegistered});
}

void TransferEngine::fill_locked(std::vector<TransferId>& admitted) {
  while (!queue_.empty() && (max_inflight_ == 0 || inflight_ < max_inflight_)) {
    TransferId next = queue_.front();
    queue_.pop_front();
    ++inflight_;
    ++admitted_total_;
    set_phase(next, TransferPhase::kActive);
    admitted.push_back(next);
  }
}

TransferEngine::StartResult TransferEngine::request_start(TransferId t) {
  StartResult out;
  MutexLock lock(sched_mu_);
  switch (get_phase(t)) {
    case TransferPhase::kDone:
      out.decision = Admission::kDone;
      return out;
    case TransferPhase::kActive:
      out.decision = Admission::kAlreadyActive;
      return out;
    case TransferPhase::kQueued:
      // Already waiting; a duplicate request must not double-enqueue.
      out.decision = Admission::kQueued;
      fill_locked(out.admitted);
      break;
    case TransferPhase::kRegistered:
      if (max_inflight_ == 0 || inflight_ < max_inflight_) {
        ++inflight_;
        ++admitted_total_;
        set_phase(t, TransferPhase::kActive);
        out.decision = Admission::kAdmitted;
        out.admitted.push_back(t);
      } else {
        set_phase(t, TransferPhase::kQueued);
        queue_.push_back(t);
        out.decision = Admission::kQueued;
      }
      break;
  }
  return out;
}

std::vector<TransferId> TransferEngine::complete(TransferId t) {
  std::vector<TransferId> admitted;
  MutexLock lock(sched_mu_);
  switch (get_phase(t)) {
    case TransferPhase::kDone:
      return admitted;
    case TransferPhase::kActive:
      if (inflight_ > 0) --inflight_;
      break;
    case TransferPhase::kQueued:
      // A result arrived (peer pull, another coordinator) before this node
      // ever admitted the transfer: drop it from the wait queue.
      queue_.erase(std::remove(queue_.begin(), queue_.end(), t), queue_.end());
      break;
    case TransferPhase::kRegistered:
      break;
  }
  set_phase(t, TransferPhase::kDone);
  fill_locked(admitted);
  return admitted;
}

std::vector<TransferId> TransferEngine::abort_inflight() {
  std::vector<TransferId> aborted;
  MutexLock lock(sched_mu_);
  // Collect the active set in ascending id order (deterministic — shard
  // iteration order must not leak into scheduling decisions).
  for (const Shard& s : shards_) {
    MutexLock shard_lock(s.mu);
    for (const auto& [id, rec] : s.records) {
      if (rec.phase == TransferPhase::kActive) aborted.push_back(id);
    }
  }
  std::sort(aborted.begin(), aborted.end());
  // Demote to the FRONT of the queue: aborted transfers were admitted before
  // anything currently queued, and keep that priority under the new epoch.
  for (auto it = aborted.rbegin(); it != aborted.rend(); ++it) {
    set_phase(*it, TransferPhase::kQueued);
    queue_.push_front(*it);
  }
  inflight_ = 0;
  return aborted;
}

std::vector<TransferId> TransferEngine::fill_slots() {
  std::vector<TransferId> admitted;
  MutexLock lock(sched_mu_);
  fill_locked(admitted);
  return admitted;
}

void TransferEngine::reset() {
  MutexLock lock(sched_mu_);
  queue_.clear();
  inflight_ = 0;
  admitted_total_ = 0;
  for (Shard& s : shards_) {
    MutexLock shard_lock(s.mu);
    s.records.clear();
  }
}

TransferPhase TransferEngine::phase(TransferId t) const { return get_phase(t); }

std::size_t TransferEngine::inflight() const {
  MutexLock lock(sched_mu_);
  return inflight_;
}

std::size_t TransferEngine::queued() const {
  MutexLock lock(sched_mu_);
  return queue_.size();
}

std::uint64_t TransferEngine::admitted_total() const {
  MutexLock lock(sched_mu_);
  return admitted_total_;
}

}  // namespace dblind::core
