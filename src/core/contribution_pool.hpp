// Precomputed blinding-contribution pool (offline/online split, ISSUE 5).
//
// Everything expensive a contributor does for one Fig. 4 instance — sampling
// ρ, computing the dual encryptions E_A(ρ)/E_B(ρ), and the commit-phase
// exponentiations of the three VDE subproofs — depends only on the service
// keys, never on the transfer being served. A ContributionBundle captures
// that offline work; ProtocolServer keeps a bounded pool of bundles, refills
// it from an idle-time timer, and drains one per instance. The online
// remainder (Fiat-Shamir challenge binding + response arithmetic,
// zkp::vde_prove_online) costs zero group exponentiations.
//
// Security invariants (enforced by lint_crypto.py's pool-reuse rule and the
// trace checker's single-use invariant):
//   * All bundle randomness comes from an mpz::Prng (the server's dedicated
//     offline fork) — never ad-hoc entropy.
//   * Bundles are move-only and consumed at most once: ρ and the VDE
//     announcement randomness become public-equation material the moment a
//     proof is finished, so finishing twice with different challenges would
//     leak the witnesses.
//   * The pool never enters ProtocolServer::snapshot(): precomputed ρ values
//     are secrets, and a restored server regenerates its pool from scratch.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "core/config.hpp"
#include "core/sync.hpp"
#include "zkp/vde.hpp"

namespace dblind::core {

// One precomputed contribution: the blinding factor, both encryptions, their
// nonces (the VDE witnesses) and the offline half of the VDE proof.
// Move-only: a bundle holds single-use secret randomness.
struct ContributionBundle {
  std::uint64_t id = 0;  // for single-use tracing; never reused per node
  mpz::Bigint rho;
  mpz::Bigint r1, r2;        // encryption nonces (VDE witnesses)
  elgamal::Ciphertext ea;    // E_A(rho, r1)
  elgamal::Ciphertext eb;    // E_B(rho, r2)
  zkp::VdeOffline vde;       // announcements for the proof over (ea, eb)

  ContributionBundle() = default;
  ContributionBundle(ContributionBundle&&) = default;
  ContributionBundle& operator=(ContributionBundle&&) = default;
  ContributionBundle(const ContributionBundle&) = delete;
  ContributionBundle& operator=(const ContributionBundle&) = delete;
};

// Computes one bundle. Draws exactly the same randomness, in the same order,
// as the on-demand contributor path (rho, r1, r2, then the three VDE
// announcement exponents), so pool-on and pool-off runs over the same prng
// stream produce byte-identical wire messages.
[[nodiscard]] ContributionBundle make_contribution_bundle(const SystemConfig& cfg,
                                                          std::uint64_t id, mpz::Prng& prng);

// Bounded FIFO of bundles. Internally synchronized: today one
// ProtocolServer's handlers/timers own it, but the concurrent
// multi-transfer engine (ROADMAP) will refill from a background thread
// while per-transfer state machines drain — take() moves the bundle out
// under the pool mutex, so a consumed entry can never be observed twice
// even under concurrent drains (the single-use property the VDE witness
// secrecy argument rests on).
class ContributionPool {
 public:
  explicit ContributionPool(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] std::size_t size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return entries_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool full() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return entries_.size() >= capacity_;
  }

  // Adds a bundle; ignored (dropped) when already at capacity.
  void push(ContributionBundle b) EXCLUDES(mu_);
  // FIFO move-out; nullopt when empty (caller falls back to on-demand).
  [[nodiscard]] std::optional<ContributionBundle> take() EXCLUDES(mu_);
  // Drops every entry (crash/restore: precomputed secrets never survive an
  // incarnation).
  void clear() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    entries_.clear();
  }

 private:
  const std::size_t capacity_;  // immutable after construction
  mutable Mutex mu_;
  std::deque<ContributionBundle> entries_ GUARDED_BY(mu_);
};

}  // namespace dblind::core
