// Protocol messages (paper Figure 4) and threshold sub-protocol messages.
//
// Top-level wire format: one byte WireKind, then either
//   - a SignedMessage ⟨m⟩_i — a server-signed envelope whose body is a
//     type-tagged message (all intra-service traffic), or
//   - a ServiceSignedMsg ⟨m⟩_S — a threshold-signed payload (the cross-
//     service `blind` and `done` messages, verifiable with only the service
//     public key).
//
// Bodies carry their MsgType tag as the first byte so that a signature binds
// the message kind, and evidence (nested SignedMessages) can be re-verified
// recursively per the validity rules of Figure 5.
#pragma once

#include <cstdint>
#include <vector>

#include "core/codec.hpp"
#include "core/types.hpp"
#include "elgamal/elgamal.hpp"
#include "hash/sha256.hpp"
#include "threshold/feldman.hpp"
#include "threshold/thresh_decrypt.hpp"
#include "threshold/thresh_sign.hpp"
#include "zkp/schnorr.hpp"
#include "zkp/vde.hpp"

namespace dblind::core {

enum class MsgType : std::uint8_t {
  // Distributed blinding protocol (Fig. 4 steps 1-4).
  kInit = 1,
  kCommit = 2,
  kReveal = 3,
  kContribute = 4,
  // Cross-service payloads (threshold-signed; Fig. 4 steps 5(d), 6(e)).
  kBlind = 5,
  kDone = 6,
  // Threshold-signature sub-protocol (steps 5(c), 6(d)).
  kSignRequest = 7,
  kSignCommitReply = 8,
  kSignQuorum = 9,
  kSignRevealReply = 10,
  kSignRevealSet = 11,
  kSignPartialReply = 12,
  // Threshold-decryption sub-protocol (step 6(b)).
  kDecryptRequest = 13,
  kDecryptShareReply = 14,
  // Client-facing messages (library extension; see core/client.hpp).
  kTransferRequest = 15,   // client -> A and B: store E_A(m) / register id
  kResultRequest = 16,     // client -> B server: fetch the done message
  kResultReply = 17,       // B server -> client: the service-signed done
  kClientDecryptRequest = 18,  // client -> B servers: decryption shares please
  kClientDecryptReply = 19,    // B server -> client: share + proof
  // Epochal reconfiguration (membership/threshold change; see
  // core/reconfig.hpp and docs/PROTOCOL.md "Reconfiguration").
  kReconfigStart = 20,    // coordinator -> old roster: re-share for this spec
  kReshareDeal = 21,      // dealer -> coordinators: COMMITMENTS only (public)
  kReshareSubshare = 22,  // dealer -> one new-roster server: its sub-shares
  kReconfigApply = 23,    // coordinator -> everyone: spec + f+1 deal envelopes
  kReconfigEcho = 24,     // old-roster server -> everyone: echo of apply digest
  kWrongEpoch = 25,       // receiver -> stale sender: my epoch is newer
  kReconfigPull = 26,     // lagging node -> peers: send installs after epoch e
  kReconfigState = 27,    // reply: one epoch's apply + 2f+1 echo certificate
  kSubsharePull = 28,     // new-roster server -> dealer: resend my sub-shares
};

enum class WireKind : std::uint8_t {
  kServerSigned = 1,
  kServiceSigned = 2,
  // Unauthenticated client traffic. Clients are outside the services' key
  // universe (the paper's architecture intentionally hides server keys from
  // them); everything a client RECEIVES is verifiable (service signatures,
  // share proofs), and everything it SENDS is either public (a ciphertext to
  // store) or gated by content checks at the servers.
  kClient = 3,
};

// --- low-level codec helpers -------------------------------------------------

void put_ciphertext(Writer& w, const elgamal::Ciphertext& c);
elgamal::Ciphertext get_ciphertext(Reader& r);
void put_schnorr_sig(Writer& w, const zkp::SchnorrSignature& s);
zkp::SchnorrSignature get_schnorr_sig(Reader& r);
void put_dlog_proof(Writer& w, const zkp::DlogEqProof& p);
zkp::DlogEqProof get_dlog_proof(Reader& r);
void put_vde_proof(Writer& w, const zkp::VdeProof& p);
zkp::VdeProof get_vde_proof(Reader& r);
void put_decryption_share(Writer& w, const threshold::DecryptionShare& s);
threshold::DecryptionShare get_decryption_share(Reader& r);
void put_feldman(Writer& w, const threshold::FeldmanCommitments& c);
threshold::FeldmanCommitments get_feldman(Reader& r);

// --- envelopes ---------------------------------------------------------------

// ⟨m⟩_i: body signed by an individual server key. The signature covers the
// 4-byte little-endian `cfg_epoch` followed by `body` (always — epoch 0
// included), so an envelope cannot be re-stamped into another configuration
// without breaking its signature.
struct SignedMessage {
  std::uint8_t service = 0;  // ServiceRole of the signer
  ServerRank signer = 0;
  ConfigEpoch cfg_epoch = 0;  // signer's config epoch at send time
  std::vector<std::uint8_t> body;  // type-tagged message bytes
  zkp::SchnorrSignature sig;

  void encode(Writer& w) const;
  static SignedMessage decode(Reader& r);
  friend bool operator==(const SignedMessage&, const SignedMessage&) = default;
};

// ⟨m⟩_S: body carrying a threshold (service) signature.
struct ServiceSignedMsg {
  std::uint8_t service = 0;  // ServiceRole of the signing service
  std::vector<std::uint8_t> body;
  zkp::SchnorrSignature sig;

  void encode(Writer& w) const;
  static ServiceSignedMsg decode(Reader& r);
  friend bool operator==(const ServiceSignedMsg&, const ServiceSignedMsg&) = default;
};

// --- blinding-protocol messages ----------------------------------------------

struct InitMsg {
  InstanceId id;

  void encode(Writer& w) const;
  static InitMsg decode(Reader& r);
};

struct CommitMsg {
  InstanceId id;
  ServerRank server = 0;
  hash::Digest commitment{};  // κ(E_A(ρ_i), E_B(ρ_i))

  void encode(Writer& w) const;
  static CommitMsg decode(Reader& r);
};

struct RevealMsg {
  InstanceId id;
  std::vector<SignedMessage> commits;  // M: 2f+1 valid commit messages

  void encode(Writer& w) const;
  static RevealMsg decode(Reader& r);
};

// An encrypted contribution (E_A(ρ_i), E_B(ρ_i)).
struct Contribution {
  elgamal::Ciphertext ea;
  elgamal::Ciphertext eb;

  void encode(Writer& w) const;
  static Contribution decode(Reader& r);
  // κ(E_A(ρ_i), E_B(ρ_i)) — the hash commitment of step 2(b).
  [[nodiscard]] hash::Digest commitment_digest() const;
  friend bool operator==(const Contribution&, const Contribution&) = default;
};

struct ContributeMsg {
  InstanceId id;
  ServerRank server = 0;
  SignedMessage reveal;  // R: the reveal message this responds to (evidence)
  Contribution contribution;
  zkp::VdeProof vde;

  void encode(Writer& w) const;
  static ContributeMsg decode(Reader& r);
};

// (id, blind, A, E_A(ρ), B, E_B(ρ)) — the payload that service B
// threshold-signs in step 5(c).
struct BlindPayload {
  InstanceId id;
  Contribution blinded;  // the combined (E_A(ρ), E_B(ρ))

  void encode(Writer& w) const;
  static BlindPayload decode(Reader& r);
};

// (id, done, A, E_A(m), B, E_B(m)) — payload threshold-signed by A in 6(d).
struct DonePayload {
  InstanceId id;
  elgamal::Ciphertext ea_m;
  elgamal::Ciphertext eb_m;

  void encode(Writer& w) const;
  static DonePayload decode(Reader& r);
};

// --- threshold-signature sub-protocol ----------------------------------------

enum class SignPurpose : std::uint8_t {
  kBlind = 1,  // service B signs a BlindPayload
  kDone = 2,   // service A signs a DonePayload
};

// Evidence making a kBlind signing request self-verifying: f+1 valid
// contribute messages (each embeds the reveal, which embeds the commits).
struct BlindEvidence {
  std::vector<SignedMessage> contributes;

  void encode(Writer& w) const;
  static BlindEvidence decode(Reader& r);
};

// Evidence making a kDone signing request self-verifying: the service-signed
// blind message, the blinded plaintext mρ, and the decryption shares V^id_mρ
// proving mρ is the correct decryption of E_A(mρ).
struct DoneEvidence {
  ServiceSignedMsg blind;
  mpz::Bigint m_rho;
  std::vector<threshold::DecryptionShare> shares;

  void encode(Writer& w) const;
  static DoneEvidence decode(Reader& r);
};

struct SignRequestMsg {
  std::uint64_t session = 0;  // unique per (requester, attempt)
  std::uint8_t purpose = 0;   // SignPurpose
  std::vector<std::uint8_t> payload;   // the bytes to be threshold-signed
  std::vector<std::uint8_t> evidence;  // BlindEvidence or DoneEvidence bytes

  void encode(Writer& w) const;
  static SignRequestMsg decode(Reader& r);
};

struct SignCommitReplyMsg {
  std::uint64_t session = 0;
  threshold::NonceCommitment commit;

  void encode(Writer& w) const;
  static SignCommitReplyMsg decode(Reader& r);
};

struct SignQuorumMsg {
  std::uint64_t session = 0;
  std::vector<threshold::NonceCommitment> quorum;

  void encode(Writer& w) const;
  static SignQuorumMsg decode(Reader& r);
};

struct SignRevealReplyMsg {
  std::uint64_t session = 0;
  threshold::NonceReveal reveal;

  void encode(Writer& w) const;
  static SignRevealReplyMsg decode(Reader& r);
};

struct SignRevealSetMsg {
  std::uint64_t session = 0;
  std::vector<threshold::NonceReveal> reveals;

  void encode(Writer& w) const;
  static SignRevealSetMsg decode(Reader& r);
};

struct SignPartialReplyMsg {
  std::uint64_t session = 0;
  threshold::PartialSignature partial;

  void encode(Writer& w) const;
  static SignPartialReplyMsg decode(Reader& r);
};

// --- threshold-decryption sub-protocol ---------------------------------------

struct DecryptRequestMsg {
  InstanceId id;
  ServiceSignedMsg blind;  // M'': evidence that this decryption is justified

  void encode(Writer& w) const;
  static DecryptRequestMsg decode(Reader& r);
};

struct DecryptShareReplyMsg {
  InstanceId id;
  threshold::DecryptionShare share;

  void encode(Writer& w) const;
  static DecryptShareReplyMsg decode(Reader& r);
};

// --- client-facing messages ----------------------------------------------------

struct TransferRequestMsg {
  TransferId transfer = 0;
  elgamal::Ciphertext ea_m;  // used by A servers; B servers only register

  void encode(Writer& w) const;
  static TransferRequestMsg decode(Reader& r);
};

struct ResultRequestMsg {
  TransferId transfer = 0;

  void encode(Writer& w) const;
  static ResultRequestMsg decode(Reader& r);
};

struct ResultReplyMsg {
  TransferId transfer = 0;
  ServiceSignedMsg done;  // verifiable with the service public key alone

  void encode(Writer& w) const;
  static ResultReplyMsg decode(Reader& r);
};

struct ClientDecryptRequestMsg {
  TransferId transfer = 0;
  elgamal::Ciphertext ciphertext;  // must match a valid done for `transfer`

  void encode(Writer& w) const;
  static ClientDecryptRequestMsg decode(Reader& r);
};

struct ClientDecryptReplyMsg {
  TransferId transfer = 0;
  threshold::DecryptionShare share;

  void encode(Writer& w) const;
  static ClientDecryptReplyMsg decode(Reader& r);
};

// --- reconfiguration messages ---------------------------------------------------

// One new-roster slot: which transport node takes rank j, and its (pre-
// distributed) message-signing verify key. Service threshold keys are NOT
// here — they are re-shared, and the public keys never change.
struct RosterEntry {
  std::uint32_t node = 0;  // net::NodeId of the server holding this rank
  mpz::Bigint sign_key;    // Schnorr verify-key group element

  void encode(Writer& w) const;
  static RosterEntry decode(Reader& r);
  friend bool operator==(const RosterEntry&, const RosterEntry&) = default;
};

// The target configuration of one reconfiguration: which service changes,
// the epoch the change installs, the new (n', f') and the new roster (entry
// j-1 holds new rank j). The config epoch is GLOBAL: installing a spec for
// either service moves every node to `epoch`.
struct ReconfigSpec {
  std::uint8_t service = 0;  // ServiceRole whose roster/threshold changes
  ConfigEpoch epoch = 0;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::vector<RosterEntry> roster;

  void encode(Writer& w) const;
  static ReconfigSpec decode(Reader& r);
  friend bool operator==(const ReconfigSpec&, const ReconfigSpec&) = default;
};

struct ReconfigStartMsg {
  ReconfigSpec spec;

  void encode(Writer& w) const;
  static ReconfigStartMsg decode(Reader& r);
};

// A dealer's re-sharing COMMITMENTS for both service keys (encryption +
// signing). Public by design; the secret sub-shares travel separately,
// point-to-point, in ReshareSubshareMsg — never through the coordinator.
struct ReshareDealMsg {
  std::uint8_t service = 0;
  ConfigEpoch epoch = 0;  // the epoch being installed
  std::uint32_t dealer = 0;  // OLD rank of the dealing server
  threshold::FeldmanCommitments enc;
  threshold::FeldmanCommitments sign;

  void encode(Writer& w) const;
  static ReshareDealMsg decode(Reader& r);
};

// The sub-shares for ONE new-roster server from one dealer. Secret: any
// f'+1 of a dealer's sub-shares reveal that dealer's old share.
struct ReshareSubshareMsg {
  std::uint8_t service = 0;
  ConfigEpoch epoch = 0;
  std::uint32_t dealer = 0;
  std::uint32_t target_rank = 0;  // new rank this sub-share pair belongs to
  mpz::Bigint enc_sub;   // taint:secret
  mpz::Bigint sign_sub;  // taint:secret

  void encode(Writer& w) const;
  static ReshareSubshareMsg decode(Reader& r);
};

// The coordinator's chosen configuration: the spec, the f+1 commitment-valid
// deal envelopes defining the apply quorum, and the transfers still
// unfinished at proposal time (so joiners learn what to coordinate).
struct ReconfigApplyMsg {
  ReconfigSpec spec;
  std::vector<SignedMessage> deals;  // kReshareDeal envelopes, dealer-signed
  std::vector<TransferId> transfers;

  void encode(Writer& w) const;
  static ReconfigApplyMsg decode(Reader& r);
};

// Bracha-style echo of an apply's digest: a server installs epoch e only
// after 2f+1 old-roster echoes of the same digest.
struct ReconfigEchoMsg {
  std::uint8_t service = 0;
  ConfigEpoch epoch = 0;
  hash::Digest digest{};  // over the encoded ReconfigApplyMsg body

  void encode(Writer& w) const;
  static ReconfigEchoMsg decode(Reader& r);
};

// Typed stale-epoch rejection (liveness-only: unauthenticated; a forged one
// merely triggers a harmless pull probe at the receiver).
struct WrongEpochMsg {
  std::uint8_t service = 0;
  ConfigEpoch epoch = 0;  // the rejecting server's CURRENT epoch

  void encode(Writer& w) const;
  static WrongEpochMsg decode(Reader& r);
};

struct ReconfigPullMsg {
  ConfigEpoch epoch = 0;  // puller's installed epoch; send me everything newer

  void encode(Writer& w) const;
  static ReconfigPullMsg decode(Reader& r);
};

// One installed epoch's self-certifying record: the apply envelope plus the
// 2f+1-echo certificate. A lagging node replays these in epoch order,
// validating each step against the roster the previous step installed.
struct ReconfigStateMsg {
  SignedMessage apply;                // kReconfigApply envelope
  std::vector<SignedMessage> echoes;  // 2f+1 kReconfigEcho envelopes

  void encode(Writer& w) const;
  static ReconfigStateMsg decode(Reader& r);
};

// A new-roster server that has the apply but is missing sub-shares asks the
// dealers to resend its (and only its) sub-share pair.
struct SubsharePullMsg {
  std::uint8_t service = 0;
  ConfigEpoch epoch = 0;
  std::uint32_t my_new_rank = 0;

  void encode(Writer& w) const;
  static SubsharePullMsg decode(Reader& r);
};

// --- type-tagged body helpers --------------------------------------------------

// Encodes `msg` with its leading MsgType tag.
template <typename T>
std::vector<std::uint8_t> encode_body(MsgType type, const T& msg) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  msg.encode(w);
  return w.take();
}

// Reads the MsgType tag without consuming the message.
[[nodiscard]] MsgType peek_type(std::span<const std::uint8_t> body);

// Decodes a body expecting the given tag; throws CodecError on mismatch or
// trailing bytes.
template <typename T>
T decode_as(MsgType expect, std::span<const std::uint8_t> body) {
  Reader r(body);
  auto tag = static_cast<MsgType>(r.u8());
  if (tag != expect) throw CodecError("decode_as: unexpected message type");
  T msg = T::decode(r);
  r.expect_done();
  return msg;
}

}  // namespace dblind::core
