// Identifiers and context strings for the re-encryption protocol.
#pragma once

#include <cstdint>
#include <string>

#include "core/codec.hpp"

namespace dblind::core {

// Rank of a server within its service, 1-based (matches threshold share
// indices).
using ServerRank = std::uint32_t;

enum class ServiceRole : std::uint8_t {
  kServiceA = 0,  // holds E_A(m); performs threshold decryption (step 6)
  kServiceB = 1,  // destination; runs the distributed blinding protocol
};

// Application-level transfer: "re-encrypt stored secret #x from A to B".
using TransferId = std::uint64_t;

// Monotonically increasing CONFIGURATION epoch (roster/threshold/share-set
// generation) shared by both services. Distinct from InstanceId::epoch, which
// is a per-transfer coordinator retry counter. Every server-signed envelope
// is stamped with (and its signature bound to) the sender's config epoch;
// mixing contributions across config epochs is forbidden (invariant I6).
using ConfigEpoch = std::uint32_t;

// Instance of the distributed blinding protocol (§4: "id identifies the
// instance of the protocol execution; id contains, among other things, the
// identifier for the coordinator").
struct InstanceId {
  TransferId transfer = 0;
  ServerRank coordinator = 0;  // rank of the coordinator within service B
  // Retry counter: a coordinator starts a fresh instance (epoch+1) in the
  // rare case the combined contribution is degenerate (§3's side condition)
  // — "new values can thus be requested".
  std::uint32_t epoch = 0;

  void encode(Writer& w) const {
    w.u64(transfer);
    w.u32(coordinator);
    w.u32(epoch);
  }
  static InstanceId decode(Reader& r) {
    InstanceId id;
    id.transfer = r.u64();
    id.coordinator = r.u32();
    id.epoch = r.u32();
    return id;
  }

  [[nodiscard]] std::string str() const {
    return "t" + std::to_string(transfer) + "/c" + std::to_string(coordinator) + "/e" +
           std::to_string(epoch);
  }

  friend bool operator==(const InstanceId&, const InstanceId&) = default;
  friend auto operator<=>(const InstanceId&, const InstanceId&) = default;
};

// Context strings binding ZK proofs to their use site.
inline std::string vde_context(const InstanceId& id, ServerRank server) {
  return "dblind/contribution/" + id.str() + "/s" + std::to_string(server);
}
inline std::string decrypt_context(const InstanceId& id) {
  return "dblind/decrypt/" + id.str();
}

}  // namespace dblind::core
