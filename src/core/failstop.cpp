#include "core/failstop.hpp"

namespace dblind::core {

namespace {

// Plain (unsigned) messages: the fail-stop model has no Byzantine senders.
enum class FsType : std::uint8_t { kInit = 1, kContribute = 2 };

std::vector<std::uint8_t> fs_init(std::uint32_t coordinator) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(FsType::kInit));
  w.u32(coordinator);
  return w.take();
}

std::vector<std::uint8_t> fs_contribute(std::uint32_t coordinator, std::uint32_t server,
                                        const Contribution& c) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(FsType::kContribute));
  w.u32(coordinator);
  w.u32(server);
  c.encode(w);
  return w.take();
}

}  // namespace

class FailstopBlindingSystem::ServerNode final : public net::Node {
 public:
  ServerNode(FailstopBlindingSystem& sys, std::uint32_t rank) : sys_(sys), rank_(rank) {}

  void on_start(net::Context& ctx) override {
    const FailstopOptions& o = sys_.opts_;
    if (rank_ > o.f + 1) return;  // not a coordinator
    net::Time delay = (rank_ - 1) * o.backup_delay;
    if (delay == 0) {
      start_coordinator(ctx);
    } else {
      ctx.set_timer(delay, 0);
    }
  }

  void on_timer(net::Context& ctx, std::uint64_t) override {
    if (!outcome_) start_coordinator(ctx);
  }

  void on_message(net::Context& ctx, net::NodeId from, std::span<const std::uint8_t> bytes) override {
    try {
      Reader r(bytes);
      auto type = static_cast<FsType>(r.u8());
      if (type == FsType::kInit) {
        std::uint32_t coordinator = r.u32();
        r.expect_done();
        handle_init(ctx, from, coordinator);
      } else if (type == FsType::kContribute) {
        std::uint32_t coordinator = r.u32();
        std::uint32_t server = r.u32();
        Contribution c = Contribution::decode(r);
        r.expect_done();
        if (coordinator == rank_) handle_contribute(ctx, server, c);
      }
    } catch (const CodecError&) {
    }
  }

  [[nodiscard]] const std::optional<FailstopOutcome>& outcome() const { return outcome_; }

 private:
  void start_coordinator(net::Context& ctx) {
    started_ = true;
    auto msg = fs_init(rank_);
    for (std::uint32_t r = 1; r <= sys_.opts_.n; ++r) ctx.send(r - 1, msg);
  }

  void handle_init(net::Context& ctx, net::NodeId from, std::uint32_t coordinator) {
    // Fresh, independent contribution per coordinator (paper §4.2.1:
    // "when engaging with different coordinators, a correct server selects
    // random contributions that are independent").
    if (contributed_.contains(coordinator)) return;
    contributed_.insert(coordinator);
    const group::GroupParams& gp = sys_.opts_.params;
    mpz::Bigint rho = gp.random_element(ctx.rng());
    Contribution c;
    c.ea = sys_.ka_->public_key().encrypt(rho, ctx.rng());
    c.eb = sys_.kb_->public_key().encrypt(rho, ctx.rng());
    ctx.send(from, fs_contribute(coordinator, rank_, c));
  }

  void handle_contribute(net::Context& ctx, std::uint32_t server, const Contribution& c) {
    if (outcome_ || !started_) return;
    if (!sys_.ka_->public_key().well_formed(c.ea) || !sys_.kb_->public_key().well_formed(c.eb))
      return;
    contributions_.emplace(server, c);
    const std::size_t quorum = sys_.opts_.f + 1;
    if (contributions_.size() < quorum) return;

    if (sys_.opts_.adaptive_attack && rank_ == 1) {
      attack(ctx);
      return;
    }

    std::vector<elgamal::Ciphertext> eas, ebs;
    for (const auto& [rank, contribution] : contributions_) {
      if (eas.size() == quorum) break;
      eas.push_back(contribution.ea);
      ebs.push_back(contribution.eb);
    }
    auto ea = sys_.ka_->public_key().product(eas);
    auto eb = sys_.kb_->public_key().product(ebs);
    if (!ea || !eb) return;  // degenerate; wait for more contributions
    outcome_ = FailstopOutcome{Contribution{*ea, *eb}, false};
  }

  // §4.2.1: having seen f+1 contributions, the compromised coordinator
  // computes a canceling "contribution" (expression (1) in the paper) so the
  // combined blinding factor is its own ρ̂. In the fail-stop protocol there
  // is nothing to stop it: no commitments, no VDE, no evidence.
  void attack(net::Context& ctx) {
    const group::GroupParams& gp = sys_.opts_.params;
    mpz::Bigint rho_hat = gp.random_element(ctx.rng());
    sys_.attacker_rho_ = rho_hat;
    elgamal::Ciphertext ea = sys_.ka_->public_key().encrypt(rho_hat, ctx.rng());
    elgamal::Ciphertext eb = sys_.kb_->public_key().encrypt(rho_hat, ctx.rng());
    std::size_t used = 0;
    for (const auto& [rank, contribution] : contributions_) {
      if (used == sys_.opts_.f) break;  // cancel f of them; own "contribution" is the f+1st
      auto ma = sys_.ka_->public_key().multiply(ea, sys_.ka_->public_key().inverse(contribution.ea));
      auto mb = sys_.kb_->public_key().multiply(eb, sys_.kb_->public_key().inverse(contribution.eb));
      if (!ma || !mb) return;
      ea = *ma;
      eb = *mb;
      ++used;
    }
    // cancel × (the f contributions it canceled) == E(ρ̂); combined with the
    // way Figure 3's coordinator multiplies f+1 contributions, the output is
    // exactly E(ρ̂): the adversary knows the "random" blinding factor.
    std::vector<elgamal::Ciphertext> eas{ea}, ebs{eb};
    std::size_t added = 0;
    for (const auto& [rank, contribution] : contributions_) {
      if (added == sys_.opts_.f) break;
      eas.push_back(contribution.ea);
      ebs.push_back(contribution.eb);
      ++added;
    }
    auto pea = sys_.ka_->public_key().product(eas);
    auto peb = sys_.kb_->public_key().product(ebs);
    if (!pea || !peb) return;
    outcome_ = FailstopOutcome{Contribution{*pea, *peb}, true};
  }

  FailstopBlindingSystem& sys_;
  std::uint32_t rank_;
  bool started_ = false;
  std::set<std::uint32_t> contributed_;
  std::map<std::uint32_t, Contribution> contributions_;
  std::optional<FailstopOutcome> outcome_;
};

FailstopBlindingSystem::FailstopBlindingSystem(FailstopOptions opts) : opts_(std::move(opts)) {
  mpz::Prng setup(opts_.seed ^ 0xf5);
  ka_ = std::make_unique<elgamal::KeyPair>(elgamal::KeyPair::generate(opts_.params, setup));
  kb_ = std::make_unique<elgamal::KeyPair>(elgamal::KeyPair::generate(opts_.params, setup));
  sim_ = std::make_unique<net::Simulator>(
      opts_.seed, std::make_unique<net::UniformDelay>(opts_.delay_min, opts_.delay_max));
  for (std::uint32_t r = 1; r <= opts_.n; ++r) {
    auto node = std::make_unique<ServerNode>(*this, r);
    nodes_.push_back(node.get());
    net::NodeId id = sim_->add_node(std::move(node));
    if (opts_.crashed.contains(r)) sim_->crash_at(id, 0);
  }
}

bool FailstopBlindingSystem::run(std::uint64_t max_events) {
  auto done = [&] {
    bool correct_done = false;
    for (std::uint32_t r = 1; r <= opts_.f + 1; ++r) {
      if (opts_.crashed.contains(r)) continue;
      if (opts_.adaptive_attack && r == 1) {
        if (!nodes_[r - 1]->outcome()) return false;  // wait for the attacker too
        continue;
      }
      if (nodes_[r - 1]->outcome()) correct_done = true;
    }
    return correct_done;
  };
  return sim_->run_until(done, max_events);
}

std::optional<FailstopOutcome> FailstopBlindingSystem::outcome(std::uint32_t rank) const {
  return nodes_.at(rank - 1)->outcome();
}

mpz::Bigint FailstopBlindingSystem::decrypt_a(const elgamal::Ciphertext& c) const {
  return ka_->decrypt(c);
}

mpz::Bigint FailstopBlindingSystem::decrypt_b(const elgamal::Ciphertext& c) const {
  return kb_->decrypt(c);
}

bool FailstopBlindingSystem::consistent(const FailstopOutcome& o) const {
  return decrypt_a(o.blinded.ea) == decrypt_b(o.blinded.eb);
}

}  // namespace dblind::core
