// Public system configuration shared by every node.
//
// Everything in here is public information: group parameters, service public
// keys, Feldman commitments (which determine per-server verification keys),
// and the per-server message-signing verification keys. Private key shares
// are held only by the individual server nodes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/types.hpp"
#include "elgamal/elgamal.hpp"
#include "net/sim.hpp"
#include "threshold/feldman.hpp"
#include "threshold/keygen.hpp"
#include "zkp/schnorr.hpp"

namespace dblind::obs {
class TraceRecorder;
class MetricsRegistry;
}  // namespace dblind::obs

namespace dblind::core {

// Public view of one distributed service.
struct ServicePublic {
  threshold::ServiceConfig cfg;
  elgamal::PublicKey encryption_key;                   // K_S
  threshold::FeldmanCommitments enc_commitments;       // verification of decryption shares
  zkp::SchnorrVerifyKey signing_key;                   // service signature verification
  threshold::FeldmanCommitments sign_commitments;      // verification of partial signatures
  std::vector<zkp::SchnorrVerifyKey> server_sign_keys;  // per-server message keys, [rank-1]
  net::NodeId first_node = 0;                          // simulator id of rank 1
  // Explicit rank→node map installed by epochal reconfiguration
  // (core/reconfig). Empty (the seed layout) means the contiguous
  // first_node + rank - 1 block; after a roster change ranks may map to
  // arbitrary simulator ids (joined standbys, surviving veterans).
  std::vector<net::NodeId> roster;

  [[nodiscard]] net::NodeId node_of(ServerRank rank) const {
    if (rank == 0 || rank > cfg.n) throw std::out_of_range("ServicePublic::node_of");
    if (!roster.empty()) return roster[rank - 1];
    return first_node + rank - 1;
  }
  [[nodiscard]] const zkp::SchnorrVerifyKey& server_key(ServerRank rank) const {
    if (rank == 0 || rank > server_sign_keys.size())
      throw std::out_of_range("ServicePublic::server_key");
    return server_sign_keys[rank - 1];
  }
};

struct SystemConfig {
  group::GroupParams params;
  ServicePublic a;  // source service (holds E_A(m))
  ServicePublic b;  // destination service (runs distributed blinding)

  [[nodiscard]] const ServicePublic& service(ServiceRole role) const {
    return role == ServiceRole::kServiceA ? a : b;
  }
};

// Private per-server key material (held by exactly one node).
struct ServerSecrets {
  ServiceRole role;
  ServerRank rank = 0;
  threshold::Share enc_share;           // share of the service ElGamal key
  threshold::Share sign_share;          // share of the service signing key
  mpz::Bigint server_sign_secret;       // this server's message-signing key
};

// Tunable protocol behavior (liveness knobs only; safety never depends on
// these).
struct ProtocolOptions {
  // Virtual-time delay before backup coordinator r starts (rank-1 scaled):
  // §4.1's optimization. 0 = all f+1 coordinators start immediately.
  net::Time coordinator_backup_delay = 400'000;
  // Same idea on the A side for step 6.
  net::Time responder_backup_delay = 400'000;
  // Retry timeout for threshold-signing sessions that stall (a quorum member
  // crashed or withheld its partial).
  net::Time signing_retry_delay = 600'000;
  // Number of coordinators that may ever start (paper: f+1 suffices).
  std::size_t max_coordinators = 0;  // 0 = f+1
  // If true, servers pre-generate their blinding contribution before the
  // init message arrives (step-flexibility / pre-computation claim §1).
  bool precompute_contributions = false;

  // --- chaos-layer retransmission (liveness only) ----------------------------
  // Re-send liveness-critical messages on a capped exponential backoff until
  // progress cancels the entry (or attempts run out, so the event queue
  // always drains). Retransmissions reuse the originally-signed cached
  // bytes — committed values are never re-randomized. Disabling this
  // reproduces the fire-once behavior where a single lost protocol message
  // deadlocks a transfer (exercised by the chaos deadlock regression test).
  bool retransmit = true;
  net::Time retransmit_initial_delay = 150'000;
  net::Time retransmit_max_delay = 1'200'000;
  // Total send attempts per cached message (the original send counts).
  int retransmit_max_attempts = 12;
  // B servers missing a result (recovered from a crash, or blinded by a
  // partition while the done message went out) periodically pull the
  // service-signed done message from their peers.
  net::Time result_pull_delay = 800'000;

  // --- verification fast path (safety-equivalent, see docs/PROTOCOL.md) -----
  // Check quorum evidence (contribute VDEs, envelope signatures, decryption
  // shares) with random-linear-combination batch verification instead of
  // proof-at-a-time checks. Accept/reject behavior is identical up to the
  // 2^-128 batch soundness error; on batch failure the serial path re-runs to
  // identify culprits, so no valid message is ever rejected.
  bool batch_verify = false;
  // Off-handler verification worker pool for contribute messages: >0 spawns
  // that many worker threads which verify queued contributions concurrently;
  // results are applied in arrival order, so handler-visible state evolves
  // exactly as in the inline path. Leave 0 under the deterministic Simulator;
  // intended for net::ThreadedBus deployments.
  std::size_t verify_workers = 0;

  // --- concurrent multi-transfer engine (core/transfer_engine.hpp) ----------
  // Cap on transfers this server may *self-coordinate* concurrently; excess
  // registrations queue FIFO and are admitted as in-flight transfers record
  // their done message. Gates only self-coordination (starting/backing-up a
  // coordinator for a transfer) — contributor, responder and signing-member
  // roles always react to whatever arrives, so a capped server still serves
  // other coordinators' transfers. 0 (the default) = unlimited: every
  // registered transfer is admitted immediately, byte-identical scheduling to
  // the pre-engine flow. 1 = strictly sequential (the open-loop load bench's
  // baseline mode).
  std::size_t max_inflight_transfers = 0;
  // Shard count for the engine's per-transfer state map (lock striping under
  // net::ThreadedBus; irrelevant to results).
  std::size_t engine_shards = 8;
  // Draw per-instance contribution randomness from a keyed prng stream
  // derived as SHA256(root ‖ transfer ‖ coordinator ‖ epoch) instead of the
  // shared offline fork. Makes each transfer's wire bytes independent of
  // which other transfers are interleaved with it (the concurrent-vs-
  // sequential equivalence panel relies on this). Default off: the seed
  // engine's draw order — and therefore its exact bytes — is preserved.
  // The contribution pool is bypassed in this mode (bundles in the pool are
  // not attributable to a specific instance ahead of time).
  bool per_transfer_rng = false;

  // --- offline/online contribution pool (perf only; wire-identical) ---------
  // Bounded pool of precomputed blinding-contribution bundles on each B
  // server (core/contribution_pool.hpp): ρ, both encryptions and the VDE
  // announcements are computed off the critical path, so serving an
  // init/reveal costs zero group exponentiations while a bundle is
  // available. 0 (the default) disables pooling; either way contribution
  // randomness comes from the server's dedicated offline prng fork, so
  // pool-on and pool-off runs with the same seed emit byte-identical wire
  // messages (asserted by tests/integration/pool_protocol_test.cpp).
  std::size_t contribution_pool = 0;
  // Fill the pool to capacity during on_start (the "warm" bench mode).
  bool pool_prefill = false;
  // Idle-time refill cadence: one bundle per timer tick while below
  // capacity; the timer disarms at capacity so the simulator's event queue
  // always drains.
  net::Time pool_refill_delay = 50'000;

  // --- observability (no protocol effect; see docs/OBSERVABILITY.md) --------
  // Structured per-phase trace events (epoch starts, commit/reveal/
  // contribute edges, verify pass/fail with culprits, retransmits, done).
  // Non-owning; nullptr (the default) emits nothing. core::System also
  // installs this recorder on its Simulator for network-level events.
  obs::TraceRecorder* trace = nullptr;
  // Metrics registry for counters/gauges/histograms (message counts by
  // type, mont-muls per phase, latency). Non-owning; nullptr disables
  // registration — handles then point at the process-wide discard cell, so
  // hot-path updates stay branch-free either way.
  obs::MetricsRegistry* metrics = nullptr;
  // Stall watchdog (obs/watchdog.hpp): per-transfer idle deadline in
  // transport time on B servers. A transfer with no trace activity for this
  // long gets a kStall event (with a one-shot public state dump); progress
  // after a stall gets kStallResolved. 0 (the default) disables the
  // watchdog — no timers are armed and the seed event schedule is
  // byte-identical. The watchdog reports through the trace, so it is also
  // inert while `trace` is null.
  net::Time watchdog_deadline = 0;
};

}  // namespace dblind::core
