// Concurrency-safety capabilities: Clang thread-safety-annotated wrappers
// around std::mutex / std::condition_variable, plus the annotation macro set
// (GUARDED_BY, REQUIRES, EXCLUDES, ACQUIRE/RELEASE, ...).
//
// Why wrappers instead of raw std::mutex: Clang's -Wthread-safety analysis
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) only checks lock
// discipline through types whose acquire/release functions carry capability
// attributes, and libstdc++'s std::mutex carries none. dblind::Mutex /
// dblind::MutexLock / dblind::CondVar are zero-overhead shims that add the
// attributes; on non-Clang compilers (the baked-in GCC toolchain) every
// macro expands to nothing and the wrappers compile to the std types they
// hold, so the default build is unchanged.
//
// Every shared-state class in the tree declares its mutexes as dblind::Mutex
// and tags the state they protect with GUARDED_BY — see
// docs/STATIC_ANALYSIS.md ("Concurrency capabilities") for the policy: what
// must be guarded, when EXCLUDES is required on public entry points, and the
// suppression etiquette (NO_THREAD_SAFETY_ANALYSIS needs a comment naming
// the reason; there are currently zero suppressions in src/).
//
// The gate: tools/run_thread_safety.sh compiles the whole tree with
// -Wthread-safety -Werror=thread-safety under Clang (ctest entry
// static_analysis.thread_safety; SKIPPED where no clang++ is installed,
// mirroring the clang-tidy gate).
//
// Lock-free counters (obs handles, MontgomeryCtx::mul_count_) deliberately
// stay raw std::atomic with relaxed ordering: they are monotone statistics
// whose readers tolerate staleness, and the analysis has nothing to check
// for them. The policy note in docs/STATIC_ANALYSIS.md covers when an
// atomic is acceptable in place of a guarded field.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Annotation macros (canonical names from the Clang documentation). No-ops
// everywhere except Clang, where they attach the thread-safety attributes.
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define DBLIND_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DBLIND_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC ignore the analysis
#endif

// A type that is a lockable capability ("mutex" names the capability kind in
// diagnostics).
#define CAPABILITY(x) DBLIND_THREAD_ANNOTATION(capability(x))
// RAII types that acquire in the constructor and release in the destructor.
#define SCOPED_CAPABILITY DBLIND_THREAD_ANNOTATION(scoped_lockable)
// Data members: may only be read/written while holding the given capability.
#define GUARDED_BY(x) DBLIND_THREAD_ANNOTATION(guarded_by(x))
// Pointer members: the *pointee* is protected by the given capability.
#define PT_GUARDED_BY(x) DBLIND_THREAD_ANNOTATION(pt_guarded_by(x))
// Functions: caller must hold the capability / must NOT hold it.
#define REQUIRES(...) DBLIND_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) DBLIND_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Functions that acquire/release the capability themselves.
#define ACQUIRE(...) DBLIND_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) DBLIND_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) DBLIND_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Declares the acquisition order between two capabilities.
#define ACQUIRED_BEFORE(...) DBLIND_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) DBLIND_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
// Runtime assertion that the capability is held (for code reached both with
// and without the lock, e.g. from a destructor).
#define ASSERT_CAPABILITY(x) DBLIND_THREAD_ANNOTATION(assert_capability(x))
// Function returning a reference to the capability guarding something.
#define RETURN_CAPABILITY(x) DBLIND_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch. Policy (docs/STATIC_ANALYSIS.md): every use carries a
// comment naming why the analysis cannot see the invariant; blanket
// suppressions are rejected in review. Zero uses in src/ today.
#define NO_THREAD_SAFETY_ANALYSIS DBLIND_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dblind {

// Annotated exclusive mutex. BasicLockable, so std::condition_variable_any
// (wrapped below as CondVar) can wait on it directly.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// Scoped lock: acquires at construction, releases at destruction. The
// project-wide replacement for std::lock_guard / std::unique_lock (the std
// types carry no attributes, so locks taken through them are invisible to
// the analysis).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to dblind::Mutex. Waits are annotated
// REQUIRES(mu): the analysis checks the caller holds the mutex, and treats
// the wait as keeping it held (the internal release/reacquire inside
// std::condition_variable_any is invisible, which matches the caller-visible
// contract). Waiting predicates are written as explicit `while` loops at the
// call site — a predicate lambda would be analyzed as a separate function
// and spuriously warn on guarded reads.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  template <class Clock, class Duration>
  std::cv_status wait_until(Mutex& mu,
                            const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& d)
      REQUIRES(mu) {
    return cv_.wait_for(mu, d);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace dblind
