// Off-handler verification worker pool (ProtocolOptions::verify_workers).
//
// Message handlers stay cheap by pushing expensive proof checking onto a
// small thread pool. The pool itself is a plain FIFO job queue; the
// determinism contract lives in the caller (ProtocolServer): each queued
// verification writes its result into a per-message slot, and results are
// *applied* strictly in message-arrival order at a drain point, so the
// handler-visible state machine evolves exactly as if verification had run
// inline. Workers never touch protocol state — they only compute.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace dblind::core {

class VerifyPool {
 public:
  // Spawns `workers` (>= 1) threads immediately.
  explicit VerifyPool(std::size_t workers);
  // Drains the queue: every submitted job runs before the threads join.
  ~VerifyPool();

  VerifyPool(const VerifyPool&) = delete;
  VerifyPool& operator=(const VerifyPool&) = delete;

  // Enqueues a job; jobs start in FIFO order (completion order is up to the
  // scheduler — callers sequence on a per-job future or equivalent).
  void submit(std::function<void()> job);

  // Observability: jobs counter (incremented at submit) and queue-depth gauge
  // (updated under mu_ at every transition). Default handles discard, so an
  // un-instrumented pool pays one atomic op per update and no branches.
  void set_metrics(obs::Counter jobs, obs::Gauge depth);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
  obs::Counter jobs_metric_;  // handles are trivially copyable; discard by default
  obs::Gauge depth_metric_;
};

}  // namespace dblind::core
