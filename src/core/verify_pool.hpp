// Off-handler verification worker pool (ProtocolOptions::verify_workers).
//
// Message handlers stay cheap by pushing expensive proof checking onto a
// small thread pool. The pool itself is a plain FIFO job queue; the
// determinism contract lives in the caller (ProtocolServer): each queued
// verification writes its result into a per-message slot, and results are
// *applied* strictly in message-arrival order at a drain point, so the
// handler-visible state machine evolves exactly as if verification had run
// inline. Workers never touch protocol state — they only compute.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "core/sync.hpp"
#include "obs/metrics.hpp"

namespace dblind::core {

class VerifyPool {
 public:
  // Spawns `workers` (>= 1) threads immediately.
  explicit VerifyPool(std::size_t workers);
  // Drains the queue: every submitted job runs before the threads join.
  ~VerifyPool();

  VerifyPool(const VerifyPool&) = delete;
  VerifyPool& operator=(const VerifyPool&) = delete;

  // Enqueues a job; jobs start in FIFO order (completion order is up to the
  // scheduler — callers sequence on a per-job future or equivalent). `tag`
  // attributes the job to a source (the concurrent engine passes the transfer
  // id) for the per-tag inflight accounting behind inflight(tag); tag 0 is
  // the untagged default.
  void submit(std::function<void()> job, std::uint64_t tag = 0) EXCLUDES(mu_);

  // Observability: jobs counter (incremented at submit) and queue-depth gauge
  // (updated under mu_ at every transition). Default handles discard, so an
  // un-instrumented pool pays one atomic op per update and no branches.
  void set_metrics(obs::Counter jobs, obs::Gauge depth) EXCLUDES(mu_);

  // Jobs submitted but not yet *finished* (queued + running). Tagged variant
  // counts only jobs submitted under `tag`. Both are snapshots — racy by
  // nature under concurrent submit/complete, intended for tests and metrics.
  [[nodiscard]] std::size_t pending() const EXCLUDES(mu_);
  [[nodiscard]] std::size_t inflight(std::uint64_t tag) const EXCLUDES(mu_);
  [[nodiscard]] std::size_t workers() const { return threads_.size(); }

 private:
  struct Job {
    std::function<void()> fn;
    std::uint64_t tag;
  };

  void worker_loop() EXCLUDES(mu_);
  void finish_one(std::uint64_t tag) EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Job> jobs_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::size_t unfinished_ GUARDED_BY(mu_) = 0;
  // tag -> submitted-but-unfinished count; entries erased at zero so the map
  // stays bounded by the number of concurrently active sources.
  std::map<std::uint64_t, std::size_t> tag_inflight_ GUARDED_BY(mu_);
  std::vector<std::thread> threads_;  // written by ctor only; joined by dtor
  // Metric handles are trivially copyable and updates are relaxed-atomic, but
  // the handles themselves are rebindable via set_metrics() while workers
  // read them — so the handle *slots* are guarded state.
  obs::Counter jobs_metric_ GUARDED_BY(mu_);
  obs::Gauge depth_metric_ GUARDED_BY(mu_);
};

}  // namespace dblind::core
