#include "core/verify_pool.hpp"

#include <stdexcept>

namespace dblind::core {

VerifyPool::VerifyPool(std::size_t workers) {
  if (workers == 0) throw std::invalid_argument("VerifyPool: need at least one worker");
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) threads_.emplace_back([this] { worker_loop(); });
}

VerifyPool::~VerifyPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void VerifyPool::submit(std::function<void()> job) {
  {
    MutexLock lock(mu_);
    jobs_.push_back(std::move(job));
    jobs_metric_.inc();
    depth_metric_.set(jobs_.size());
  }
  cv_.notify_one();
}

void VerifyPool::set_metrics(obs::Counter jobs, obs::Gauge depth) {
  MutexLock lock(mu_);
  jobs_metric_ = jobs;
  depth_metric_ = depth;
}

void VerifyPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mu_);
      while (!stop_ && jobs_.empty()) cv_.wait(mu_);
      if (jobs_.empty()) return;  // stop_ set and queue drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
      depth_metric_.set(jobs_.size());
    }
    job();
  }
}

}  // namespace dblind::core
