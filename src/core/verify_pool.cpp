#include "core/verify_pool.hpp"

#include <stdexcept>

namespace dblind::core {

VerifyPool::VerifyPool(std::size_t workers) {
  if (workers == 0) throw std::invalid_argument("VerifyPool: need at least one worker");
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) threads_.emplace_back([this] { worker_loop(); });
}

VerifyPool::~VerifyPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void VerifyPool::submit(std::function<void()> job, std::uint64_t tag) {
  {
    MutexLock lock(mu_);
    jobs_.push_back({std::move(job), tag});
    ++unfinished_;
    ++tag_inflight_[tag];
    jobs_metric_.inc();
    depth_metric_.set(jobs_.size());
  }
  cv_.notify_one();
}

void VerifyPool::set_metrics(obs::Counter jobs, obs::Gauge depth) {
  MutexLock lock(mu_);
  jobs_metric_ = jobs;
  depth_metric_ = depth;
}

std::size_t VerifyPool::pending() const {
  MutexLock lock(mu_);
  return unfinished_;
}

std::size_t VerifyPool::inflight(std::uint64_t tag) const {
  MutexLock lock(mu_);
  auto it = tag_inflight_.find(tag);
  return it == tag_inflight_.end() ? 0 : it->second;
}

void VerifyPool::finish_one(std::uint64_t tag) {
  MutexLock lock(mu_);
  --unfinished_;
  auto it = tag_inflight_.find(tag);
  if (it != tag_inflight_.end() && --it->second == 0) tag_inflight_.erase(it);
}

void VerifyPool::worker_loop() {
  for (;;) {
    Job job;
    {
      MutexLock lock(mu_);
      while (!stop_ && jobs_.empty()) cv_.wait(mu_);
      if (jobs_.empty()) return;  // stop_ set and queue drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
      depth_metric_.set(jobs_.size());
    }
    job.fn();
    finish_one(job.tag);
  }
}

}  // namespace dblind::core
