// Canonical binary codec — re-exported from common/ (the implementation
// moved down so that lower-level modules can serialize without depending on
// core/).
#pragma once

#include "common/codec.hpp"

namespace dblind::core {

using common::CodecError;
using common::Reader;
using common::Writer;

}  // namespace dblind::core
