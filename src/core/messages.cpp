#include "core/messages.hpp"

#include "zkp/transcript.hpp"

namespace dblind::core {

// --- low-level helpers --------------------------------------------------------

void put_ciphertext(Writer& w, const elgamal::Ciphertext& c) {
  w.bigint(c.a);
  w.bigint(c.b);
}

elgamal::Ciphertext get_ciphertext(Reader& r) {
  elgamal::Ciphertext c;
  c.a = r.bigint();
  c.b = r.bigint();
  return c;
}

void put_schnorr_sig(Writer& w, const zkp::SchnorrSignature& s) {
  w.bigint(s.r);
  w.bigint(s.s);
}

zkp::SchnorrSignature get_schnorr_sig(Reader& r) {
  zkp::SchnorrSignature s;
  s.r = r.bigint();
  s.s = r.bigint();
  return s;
}

void put_dlog_proof(Writer& w, const zkp::DlogEqProof& p) {
  w.bigint(p.t1);
  w.bigint(p.t2);
  w.bigint(p.s);
}

zkp::DlogEqProof get_dlog_proof(Reader& r) {
  zkp::DlogEqProof p;
  p.t1 = r.bigint();
  p.t2 = r.bigint();
  p.s = r.bigint();
  return p;
}

void put_vde_proof(Writer& w, const zkp::VdeProof& p) {
  w.bigint(p.g12);
  w.bigint(p.g21);
  put_dlog_proof(w, p.pr1);
  put_dlog_proof(w, p.pr2);
  put_dlog_proof(w, p.pr3);
}

zkp::VdeProof get_vde_proof(Reader& r) {
  zkp::VdeProof p;
  p.g12 = r.bigint();
  p.g21 = r.bigint();
  p.pr1 = get_dlog_proof(r);
  p.pr2 = get_dlog_proof(r);
  p.pr3 = get_dlog_proof(r);
  return p;
}

void put_decryption_share(Writer& w, const threshold::DecryptionShare& s) {
  w.u32(s.index);
  w.bigint(s.d);
  put_dlog_proof(w, s.proof);
}

threshold::DecryptionShare get_decryption_share(Reader& r) {
  threshold::DecryptionShare s;
  s.index = r.u32();
  s.d = r.bigint();
  s.proof = get_dlog_proof(r);
  return s;
}

void put_feldman(Writer& w, const threshold::FeldmanCommitments& c) {
  w.u32(static_cast<std::uint32_t>(c.coefficients.size()));
  for (const mpz::Bigint& x : c.coefficients) w.bigint(x);
}

threshold::FeldmanCommitments get_feldman(Reader& r) {
  threshold::FeldmanCommitments c;
  std::uint32_t n = r.count();
  c.coefficients.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) c.coefficients.push_back(r.bigint());
  return c;
}

// --- envelopes ------------------------------------------------------------------

void SignedMessage::encode(Writer& w) const {
  w.u8(service);
  w.u32(signer);
  w.u32(cfg_epoch);
  w.bytes(body);
  put_schnorr_sig(w, sig);
}

SignedMessage SignedMessage::decode(Reader& r) {
  SignedMessage m;
  m.service = r.u8();
  m.signer = r.u32();
  m.cfg_epoch = r.u32();
  m.body = r.bytes();
  m.sig = get_schnorr_sig(r);
  return m;
}

void ServiceSignedMsg::encode(Writer& w) const {
  w.u8(service);
  w.bytes(body);
  put_schnorr_sig(w, sig);
}

ServiceSignedMsg ServiceSignedMsg::decode(Reader& r) {
  ServiceSignedMsg m;
  m.service = r.u8();
  m.body = r.bytes();
  m.sig = get_schnorr_sig(r);
  return m;
}

// --- blinding-protocol messages ---------------------------------------------------

void InitMsg::encode(Writer& w) const { id.encode(w); }

InitMsg InitMsg::decode(Reader& r) { return {InstanceId::decode(r)}; }

void CommitMsg::encode(Writer& w) const {
  id.encode(w);
  w.u32(server);
  w.digest(commitment);
}

CommitMsg CommitMsg::decode(Reader& r) {
  CommitMsg m;
  m.id = InstanceId::decode(r);
  m.server = r.u32();
  m.commitment = r.digest();
  return m;
}

void RevealMsg::encode(Writer& w) const {
  id.encode(w);
  w.u32(static_cast<std::uint32_t>(commits.size()));
  for (const SignedMessage& c : commits) c.encode(w);
}

RevealMsg RevealMsg::decode(Reader& r) {
  RevealMsg m;
  m.id = InstanceId::decode(r);
  std::uint32_t n = r.count();
  m.commits.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.commits.push_back(SignedMessage::decode(r));
  return m;
}

void Contribution::encode(Writer& w) const {
  put_ciphertext(w, ea);
  put_ciphertext(w, eb);
}

Contribution Contribution::decode(Reader& r) {
  Contribution c;
  c.ea = get_ciphertext(r);
  c.eb = get_ciphertext(r);
  return c;
}

hash::Digest Contribution::commitment_digest() const {
  Writer w;
  encode(w);
  zkp::Transcript t("dblind/contribution-commit/v1");
  t.absorb_bytes(w.view());
  return t.digest();
}

void ContributeMsg::encode(Writer& w) const {
  id.encode(w);
  w.u32(server);
  reveal.encode(w);
  contribution.encode(w);
  put_vde_proof(w, vde);
}

ContributeMsg ContributeMsg::decode(Reader& r) {
  ContributeMsg m;
  m.id = InstanceId::decode(r);
  m.server = r.u32();
  m.reveal = SignedMessage::decode(r);
  m.contribution = Contribution::decode(r);
  m.vde = get_vde_proof(r);
  return m;
}

void BlindPayload::encode(Writer& w) const {
  id.encode(w);
  blinded.encode(w);
}

BlindPayload BlindPayload::decode(Reader& r) {
  BlindPayload m;
  m.id = InstanceId::decode(r);
  m.blinded = Contribution::decode(r);
  return m;
}

void DonePayload::encode(Writer& w) const {
  id.encode(w);
  put_ciphertext(w, ea_m);
  put_ciphertext(w, eb_m);
}

DonePayload DonePayload::decode(Reader& r) {
  DonePayload m;
  m.id = InstanceId::decode(r);
  m.ea_m = get_ciphertext(r);
  m.eb_m = get_ciphertext(r);
  return m;
}

// --- threshold-signature sub-protocol ----------------------------------------------

void BlindEvidence::encode(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(contributes.size()));
  for (const SignedMessage& c : contributes) c.encode(w);
}

BlindEvidence BlindEvidence::decode(Reader& r) {
  BlindEvidence e;
  std::uint32_t n = r.count();
  e.contributes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) e.contributes.push_back(SignedMessage::decode(r));
  return e;
}

void DoneEvidence::encode(Writer& w) const {
  blind.encode(w);
  w.bigint(m_rho);
  w.u32(static_cast<std::uint32_t>(shares.size()));
  for (const threshold::DecryptionShare& s : shares) put_decryption_share(w, s);
}

DoneEvidence DoneEvidence::decode(Reader& r) {
  DoneEvidence e;
  e.blind = ServiceSignedMsg::decode(r);
  e.m_rho = r.bigint();
  std::uint32_t n = r.count();
  e.shares.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) e.shares.push_back(get_decryption_share(r));
  return e;
}

void SignRequestMsg::encode(Writer& w) const {
  w.u64(session);
  w.u8(purpose);
  w.bytes(payload);
  w.bytes(evidence);
}

SignRequestMsg SignRequestMsg::decode(Reader& r) {
  SignRequestMsg m;
  m.session = r.u64();
  m.purpose = r.u8();
  m.payload = r.bytes();
  m.evidence = r.bytes();
  return m;
}

void SignCommitReplyMsg::encode(Writer& w) const {
  w.u64(session);
  w.u32(commit.index);
  w.digest(commit.digest);
}

SignCommitReplyMsg SignCommitReplyMsg::decode(Reader& r) {
  SignCommitReplyMsg m;
  m.session = r.u64();
  m.commit.index = r.u32();
  m.commit.digest = r.digest();
  return m;
}

void SignQuorumMsg::encode(Writer& w) const {
  w.u64(session);
  w.u32(static_cast<std::uint32_t>(quorum.size()));
  for (const threshold::NonceCommitment& c : quorum) {
    w.u32(c.index);
    w.digest(c.digest);
  }
}

SignQuorumMsg SignQuorumMsg::decode(Reader& r) {
  SignQuorumMsg m;
  m.session = r.u64();
  std::uint32_t n = r.count();
  m.quorum.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    threshold::NonceCommitment c;
    c.index = r.u32();
    c.digest = r.digest();
    m.quorum.push_back(c);
  }
  return m;
}

void SignRevealReplyMsg::encode(Writer& w) const {
  w.u64(session);
  w.u32(reveal.index);
  w.bigint(reveal.t);
}

SignRevealReplyMsg SignRevealReplyMsg::decode(Reader& r) {
  SignRevealReplyMsg m;
  m.session = r.u64();
  m.reveal.index = r.u32();
  m.reveal.t = r.bigint();
  return m;
}

void SignRevealSetMsg::encode(Writer& w) const {
  w.u64(session);
  w.u32(static_cast<std::uint32_t>(reveals.size()));
  for (const threshold::NonceReveal& rv : reveals) {
    w.u32(rv.index);
    w.bigint(rv.t);
  }
}

SignRevealSetMsg SignRevealSetMsg::decode(Reader& r) {
  SignRevealSetMsg m;
  m.session = r.u64();
  std::uint32_t n = r.count();
  m.reveals.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    threshold::NonceReveal rv;
    rv.index = r.u32();
    rv.t = r.bigint();
    m.reveals.push_back(std::move(rv));
  }
  return m;
}

void SignPartialReplyMsg::encode(Writer& w) const {
  w.u64(session);
  w.u32(partial.index);
  w.bigint(partial.s);
}

SignPartialReplyMsg SignPartialReplyMsg::decode(Reader& r) {
  SignPartialReplyMsg m;
  m.session = r.u64();
  m.partial.index = r.u32();
  m.partial.s = r.bigint();
  return m;
}

// --- threshold-decryption sub-protocol ---------------------------------------------

void DecryptRequestMsg::encode(Writer& w) const {
  id.encode(w);
  blind.encode(w);
}

DecryptRequestMsg DecryptRequestMsg::decode(Reader& r) {
  DecryptRequestMsg m;
  m.id = InstanceId::decode(r);
  m.blind = ServiceSignedMsg::decode(r);
  return m;
}

void DecryptShareReplyMsg::encode(Writer& w) const {
  id.encode(w);
  put_decryption_share(w, share);
}

DecryptShareReplyMsg DecryptShareReplyMsg::decode(Reader& r) {
  DecryptShareReplyMsg m;
  m.id = InstanceId::decode(r);
  m.share = get_decryption_share(r);
  return m;
}

// --- client-facing messages -----------------------------------------------------

void TransferRequestMsg::encode(Writer& w) const {
  w.u64(transfer);
  put_ciphertext(w, ea_m);
}

TransferRequestMsg TransferRequestMsg::decode(Reader& r) {
  TransferRequestMsg m;
  m.transfer = r.u64();
  m.ea_m = get_ciphertext(r);
  return m;
}

void ResultRequestMsg::encode(Writer& w) const { w.u64(transfer); }

ResultRequestMsg ResultRequestMsg::decode(Reader& r) {
  ResultRequestMsg m;
  m.transfer = r.u64();
  return m;
}

void ResultReplyMsg::encode(Writer& w) const {
  w.u64(transfer);
  done.encode(w);
}

ResultReplyMsg ResultReplyMsg::decode(Reader& r) {
  ResultReplyMsg m;
  m.transfer = r.u64();
  m.done = ServiceSignedMsg::decode(r);
  return m;
}

void ClientDecryptRequestMsg::encode(Writer& w) const {
  w.u64(transfer);
  put_ciphertext(w, ciphertext);
}

ClientDecryptRequestMsg ClientDecryptRequestMsg::decode(Reader& r) {
  ClientDecryptRequestMsg m;
  m.transfer = r.u64();
  m.ciphertext = get_ciphertext(r);
  return m;
}

void ClientDecryptReplyMsg::encode(Writer& w) const {
  w.u64(transfer);
  put_decryption_share(w, share);
}

ClientDecryptReplyMsg ClientDecryptReplyMsg::decode(Reader& r) {
  ClientDecryptReplyMsg m;
  m.transfer = r.u64();
  m.share = get_decryption_share(r);
  return m;
}

// --- reconfiguration messages ----------------------------------------------------

void RosterEntry::encode(Writer& w) const {
  w.u32(node);
  w.bigint(sign_key);
}

RosterEntry RosterEntry::decode(Reader& r) {
  RosterEntry e;
  e.node = r.u32();
  e.sign_key = r.bigint();
  return e;
}

void ReconfigSpec::encode(Writer& w) const {
  w.u8(service);
  w.u32(epoch);
  w.u32(n);
  w.u32(f);
  w.u32(static_cast<std::uint32_t>(roster.size()));
  for (const RosterEntry& e : roster) e.encode(w);
}

ReconfigSpec ReconfigSpec::decode(Reader& r) {
  ReconfigSpec s;
  s.service = r.u8();
  s.epoch = r.u32();
  s.n = r.u32();
  s.f = r.u32();
  std::uint32_t count = r.count();
  s.roster.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) s.roster.push_back(RosterEntry::decode(r));
  return s;
}

void ReconfigStartMsg::encode(Writer& w) const { spec.encode(w); }

ReconfigStartMsg ReconfigStartMsg::decode(Reader& r) { return {ReconfigSpec::decode(r)}; }

void ReshareDealMsg::encode(Writer& w) const {
  w.u8(service);
  w.u32(epoch);
  w.u32(dealer);
  put_feldman(w, enc);
  put_feldman(w, sign);
}

ReshareDealMsg ReshareDealMsg::decode(Reader& r) {
  ReshareDealMsg m;
  m.service = r.u8();
  m.epoch = r.u32();
  m.dealer = r.u32();
  m.enc = get_feldman(r);
  m.sign = get_feldman(r);
  return m;
}

void ReshareSubshareMsg::encode(Writer& w) const {
  w.u8(service);
  w.u32(epoch);
  w.u32(dealer);
  w.u32(target_rank);
  w.bigint(enc_sub);
  w.bigint(sign_sub);
}

ReshareSubshareMsg ReshareSubshareMsg::decode(Reader& r) {
  ReshareSubshareMsg m;
  m.service = r.u8();
  m.epoch = r.u32();
  m.dealer = r.u32();
  m.target_rank = r.u32();
  m.enc_sub = r.bigint();
  m.sign_sub = r.bigint();
  return m;
}

void ReconfigApplyMsg::encode(Writer& w) const {
  spec.encode(w);
  w.u32(static_cast<std::uint32_t>(deals.size()));
  for (const SignedMessage& d : deals) d.encode(w);
  w.u32(static_cast<std::uint32_t>(transfers.size()));
  for (TransferId t : transfers) w.u64(t);
}

ReconfigApplyMsg ReconfigApplyMsg::decode(Reader& r) {
  ReconfigApplyMsg m;
  m.spec = ReconfigSpec::decode(r);
  std::uint32_t nd = r.count();
  m.deals.reserve(nd);
  for (std::uint32_t i = 0; i < nd; ++i) m.deals.push_back(SignedMessage::decode(r));
  std::uint32_t nt = r.count(8);
  m.transfers.reserve(nt);
  for (std::uint32_t i = 0; i < nt; ++i) m.transfers.push_back(r.u64());
  return m;
}

void ReconfigEchoMsg::encode(Writer& w) const {
  w.u8(service);
  w.u32(epoch);
  w.digest(digest);
}

ReconfigEchoMsg ReconfigEchoMsg::decode(Reader& r) {
  ReconfigEchoMsg m;
  m.service = r.u8();
  m.epoch = r.u32();
  m.digest = r.digest();
  return m;
}

void WrongEpochMsg::encode(Writer& w) const {
  w.u8(service);
  w.u32(epoch);
}

WrongEpochMsg WrongEpochMsg::decode(Reader& r) {
  WrongEpochMsg m;
  m.service = r.u8();
  m.epoch = r.u32();
  return m;
}

void ReconfigPullMsg::encode(Writer& w) const { w.u32(epoch); }

ReconfigPullMsg ReconfigPullMsg::decode(Reader& r) { return {r.u32()}; }

void ReconfigStateMsg::encode(Writer& w) const {
  apply.encode(w);
  w.u32(static_cast<std::uint32_t>(echoes.size()));
  for (const SignedMessage& e : echoes) e.encode(w);
}

ReconfigStateMsg ReconfigStateMsg::decode(Reader& r) {
  ReconfigStateMsg m;
  m.apply = SignedMessage::decode(r);
  std::uint32_t n = r.count();
  m.echoes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.echoes.push_back(SignedMessage::decode(r));
  return m;
}

void SubsharePullMsg::encode(Writer& w) const {
  w.u8(service);
  w.u32(epoch);
  w.u32(my_new_rank);
}

SubsharePullMsg SubsharePullMsg::decode(Reader& r) {
  SubsharePullMsg m;
  m.service = r.u8();
  m.epoch = r.u32();
  m.my_new_rank = r.u32();
  return m;
}

MsgType peek_type(std::span<const std::uint8_t> body) {
  if (body.empty()) throw CodecError("peek_type: empty body");
  return static_cast<MsgType>(body[0]);
}

}  // namespace dblind::core
