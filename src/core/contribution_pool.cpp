#include "core/contribution_pool.hpp"

namespace dblind::core {

ContributionBundle make_contribution_bundle(const SystemConfig& cfg, std::uint64_t id,
                                            mpz::Prng& prng) {
  const group::GroupParams& gp = cfg.params;
  ContributionBundle b;
  b.id = id;
  b.rho = gp.random_element(prng);
  b.r1 = gp.random_exponent(prng);
  b.r2 = gp.random_exponent(prng);
  b.ea = cfg.a.encryption_key.encrypt_with_nonce(b.rho, b.r1);
  b.eb = cfg.b.encryption_key.encrypt_with_nonce(b.rho, b.r2);
  b.vde = zkp::vde_prove_offline(cfg.a.encryption_key, b.ea, b.r1, cfg.b.encryption_key, b.eb,
                                 b.r2, prng);
  return b;
}

void ContributionPool::push(ContributionBundle b) {
  // Check-and-insert under one lock acquisition: a full() pre-check would
  // race a concurrent push into the last slot and overshoot capacity.
  MutexLock lock(mu_);
  if (entries_.size() >= capacity_) return;
  entries_.push_back(std::move(b));
}

std::optional<ContributionBundle> ContributionPool::take() {
  MutexLock lock(mu_);
  if (entries_.empty()) return std::nullopt;
  ContributionBundle b = std::move(entries_.front());
  entries_.pop_front();
  return b;
}

}  // namespace dblind::core
