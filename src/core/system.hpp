// System: end-to-end assembly of two distributed services in the simulator.
//
// This is the top of the public API: it performs trusted-dealer (or DKG)
// setup of both services' key material, instantiates one ProtocolServer per
// server in the simulator, and exposes transfer start/completion plus the
// dealer-side test oracle (private keys) for verification in tests, benches
// and examples.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/server.hpp"
#include "net/sim.hpp"

namespace dblind::core {

struct SystemOptions {
  // Default group: the toy mod-p set, unless DBLIND_BACKEND=ec retargets the
  // whole default-parameter surface (tests, chaos sweeps, load harness) onto
  // the ristretto255 backend — this is the CI backend-matrix hook.
  group::GroupParams params = group::GroupParams::named_or_env(group::ParamId::kToy64);
  threshold::ServiceConfig a{4, 1};
  threshold::ServiceConfig b{4, 1};
  std::uint64_t seed = 1;
  ProtocolOptions protocol;
  // Delay policy bounds for the UniformDelay default (virtual microseconds).
  net::Time delay_min = 500;
  net::Time delay_max = 20'000;
  // Optional custom delay policy; overrides delay_min/max when set.
  std::unique_ptr<net::DelayPolicy> delay_policy;
  // Per-rank Byzantine behaviours (empty = all honest). Index [rank-1].
  std::vector<ProtocolServer::Behavior> a_behaviors;
  std::vector<ProtocolServer::Behavior> b_behaviors;
  // Use the joint-Feldman DKG instead of the trusted dealer for key setup.
  bool use_dkg = false;
  // Extra B-role servers created outside the epoch-0 roster (rank 0, no key
  // shares, a real message-signing keypair). They idle until an epochal
  // reconfiguration (core/reconfig) adopts them into the roster.
  std::size_t b_standby = 0;
};

class System {
 public:
  explicit System(SystemOptions opts);

  // --- setup (call before run) -----------------------------------------------
  // Encrypts `m` (a group element) under K_A, stores it on every A server,
  // registers the transfer on every B server. Returns the transfer id.
  TransferId add_transfer(const mpz::Bigint& m);
  // Same, but the ciphertext only becomes available to A at virtual time
  // `when` (pre-computation experiment).
  TransferId add_transfer_at(const mpz::Bigint& m, net::Time when);
  // Open-loop arrival (load harness): the transfer does not exist anywhere
  // before virtual time `when` — A servers receive the ciphertext and B
  // servers register (and begin coordinating) the transfer at `when`. With
  // when == 0 this is add_transfer.
  TransferId add_transfer_arriving(const mpz::Bigint& m, net::Time when);

  // --- run ---------------------------------------------------------------------
  // Runs until every *honest* B server has a result for every transfer (or
  // the event queue drains / max_events is hit). Returns success.
  bool run_to_completion(std::uint64_t max_events = 50'000'000);

  // --- observers ------------------------------------------------------------------
  [[nodiscard]] const SystemConfig& config() const { return *cfg_; }
  [[nodiscard]] net::Simulator& sim() { return *sim_; }
  [[nodiscard]] ProtocolServer& a_server(ServerRank rank) { return *a_servers_.at(rank - 1); }
  [[nodiscard]] ProtocolServer& b_server(ServerRank rank) { return *b_servers_.at(rank - 1); }
  [[nodiscard]] const threshold::ServiceConfig& a_cfg() const { return cfg_->a.cfg; }
  [[nodiscard]] const threshold::ServiceConfig& b_cfg() const { return cfg_->b.cfg; }

  // Result as seen by B server `rank`.
  [[nodiscard]] std::optional<elgamal::Ciphertext> result(TransferId t, ServerRank rank = 1);
  // Test oracle: decrypt a ciphertext with B's (dealer-known) private key.
  [[nodiscard]] mpz::Bigint oracle_decrypt_b(const elgamal::Ciphertext& c) const;
  [[nodiscard]] mpz::Bigint oracle_decrypt_a(const elgamal::Ciphertext& c) const;
  // The plaintext originally stored for a transfer.
  [[nodiscard]] const mpz::Bigint& plaintext_of(TransferId t) const { return plaintexts_.at(t); }
  // Aggregate CPU seconds across one service's servers (offloading claim).
  [[nodiscard]] double service_cpu_seconds(ServiceRole role) const;
  // Aggregate received-message histogram across all servers.
  [[nodiscard]] std::map<MsgType, std::uint64_t> rx_histogram() const;
  [[nodiscard]] bool is_honest_b(ServerRank rank) const;

  // --- epochal reconfiguration (core/reconfig) -------------------------------
  // Builds a service-B ReconfigSpec installing at `epoch`: the roster is the
  // given simulator nodes in rank order (each must be a B-family node —
  // epoch-0 roster member or standby), n = roster.size(), threshold f.
  [[nodiscard]] ReconfigSpec make_b_spec(ConfigEpoch epoch, std::uint32_t f,
                                         const std::vector<net::NodeId>& roster) const;
  // Arms the reconfiguration round on the epoch-0 B roster: ranks 1..f+1
  // each propose the spec, rank r at `at + (r-1)*stagger`, so a crashed
  // primary proposer is covered by a staggered backup — the same discipline
  // as transfer coordinators. Call before run_to_completion.
  void schedule_reconfig_b(const ReconfigSpec& spec, net::Time at,
                           net::Time stagger = 300'000);
  // Standby B servers, 0-indexed (rank 0 until a reconfiguration adopts them).
  [[nodiscard]] ProtocolServer& b_standby_server(std::size_t i) {
    return *b_standby_servers_.at(i);
  }
  [[nodiscard]] std::size_t b_standby_count() const { return b_standby_servers_.size(); }
  // Simulator node ids: epoch-0 roster ranks and standby indices.
  [[nodiscard]] net::NodeId b_node(ServerRank rank) const { return cfg_->b.node_of(rank); }
  [[nodiscard]] net::NodeId b_standby_node(std::size_t i) const {
    return static_cast<net::NodeId>(opts_.a.n + opts_.b.n + i);
  }

 private:
  SystemOptions opts_;
  // optional<> because SystemConfig carries key material that only exists
  // after service setup runs in the constructor body.
  std::optional<SystemConfig> cfg_;
  mpz::Bigint a_private_key_;  // dealer/test oracle only
  mpz::Bigint b_private_key_;
  std::unique_ptr<net::Simulator> sim_;
  std::vector<ProtocolServer*> a_servers_;  // owned by sim_
  std::vector<ProtocolServer*> b_servers_;
  std::vector<ProtocolServer*> b_standby_servers_;  // owned by sim_
  // Every B-capable server (epoch-0 roster + standby) with its transport
  // node and configured honesty — run_to_completion's roster-aware poll set.
  struct BFamilyEntry {
    ProtocolServer* server;
    net::NodeId node;
    bool honest;
  };
  std::vector<BFamilyEntry> b_family_;
  // Message-signing verify-key points by node, for building ReconfigSpecs.
  std::map<net::NodeId, mpz::Bigint> sign_point_;
  std::vector<TransferId> transfers_;
  std::map<TransferId, mpz::Bigint> plaintexts_;
  TransferId next_transfer_ = 1;
  mpz::Prng setup_rng_;
};

}  // namespace dblind::core
