#include "core/reconfig.hpp"

#include <algorithm>
#include <set>

#include "threshold/reshare.hpp"

namespace dblind::core {

hash::Digest reconfig_apply_digest(const SignedMessage& apply_env) {
  return hash::Sha256::digest(apply_env.body);
}

bool reconfig_spec_ok(const SystemConfig& cfg, ConfigEpoch current, const ReconfigSpec& spec) {
  if (spec.epoch != current + 1) return false;
  if (spec.service != static_cast<std::uint8_t>(ServiceRole::kServiceA) &&
      spec.service != static_cast<std::uint8_t>(ServiceRole::kServiceB)) {
    return false;
  }
  if (spec.f < 1 || spec.n < 3 * spec.f + 1) return false;
  if (spec.roster.size() != spec.n) return false;
  std::set<std::uint32_t> nodes;
  for (const RosterEntry& e : spec.roster) {
    if (!nodes.insert(e.node).second) return false;
    if (!cfg.params.in_group(e.sign_key)) return false;
  }
  return true;
}

std::optional<ReshareDealMsg> check_reshare_deal(const SystemConfig& cfg, ConfigEpoch current,
                                                 const ReconfigSpec& spec,
                                                 const SignedMessage& env) {
  if (env.service != spec.service) return std::nullopt;
  if (env.cfg_epoch != current) return std::nullopt;
  if (!envelope_signature_ok(cfg, env)) return std::nullopt;
  ReshareDealMsg msg;
  try {
    msg = decode_as<ReshareDealMsg>(MsgType::kReshareDeal, env.body);
  } catch (const CodecError&) {
    return std::nullopt;
  }
  if (msg.service != spec.service || msg.epoch != spec.epoch) return std::nullopt;
  if (msg.dealer != env.signer) return std::nullopt;
  const ServicePublic& svc = cfg.service(static_cast<ServiceRole>(spec.service));
  threshold::ReshareDeal enc_deal{msg.dealer, msg.enc, {}};
  threshold::ReshareDeal sign_deal{msg.dealer, msg.sign, {}};
  if (!threshold::reshare_verify_commitments(cfg.params, svc.enc_commitments, enc_deal, spec.f)) {
    return std::nullopt;
  }
  if (!threshold::reshare_verify_commitments(cfg.params, svc.sign_commitments, sign_deal,
                                             spec.f)) {
    return std::nullopt;
  }
  return msg;
}

std::optional<ReconfigApplyMsg> check_reconfig_apply(const SystemConfig& cfg, ConfigEpoch current,
                                                     const SignedMessage& env) {
  if (env.cfg_epoch != current) return std::nullopt;
  if (!envelope_signature_ok(cfg, env)) return std::nullopt;
  ReconfigApplyMsg msg;
  try {
    msg = decode_as<ReconfigApplyMsg>(MsgType::kReconfigApply, env.body);
  } catch (const CodecError&) {
    return std::nullopt;
  }
  if (env.service != msg.spec.service) return std::nullopt;
  if (!reconfig_spec_ok(cfg, current, msg.spec)) return std::nullopt;
  const ServicePublic& svc = cfg.service(static_cast<ServiceRole>(msg.spec.service));
  if (msg.deals.size() != svc.cfg.quorum()) return std::nullopt;
  std::uint32_t prev_dealer = 0;
  for (const SignedMessage& deal_env : msg.deals) {
    auto deal = check_reshare_deal(cfg, current, msg.spec, deal_env);
    if (!deal) return std::nullopt;
    if (deal->dealer <= prev_dealer) return std::nullopt;  // strict order => distinct
    prev_dealer = deal->dealer;
  }
  return msg;
}

std::optional<ReconfigApplyMsg> check_install_record(const SystemConfig& cfg, ConfigEpoch current,
                                                     const SignedMessage& apply_env,
                                                     std::span<const SignedMessage> echoes) {
  auto apply = check_reconfig_apply(cfg, current, apply_env);
  if (!apply) return std::nullopt;
  const ServicePublic& svc = cfg.service(static_cast<ServiceRole>(apply->spec.service));
  const hash::Digest want = reconfig_apply_digest(apply_env);
  std::set<ServerRank> echoed;
  for (const SignedMessage& env : echoes) {
    if (env.service != apply->spec.service || env.cfg_epoch != current) continue;
    if (!envelope_signature_ok(cfg, env)) continue;
    ReconfigEchoMsg echo;
    try {
      echo = decode_as<ReconfigEchoMsg>(MsgType::kReconfigEcho, env.body);
    } catch (const CodecError&) {
      continue;
    }
    if (echo.service != apply->spec.service || echo.epoch != apply->spec.epoch) continue;
    if (echo.digest != want) continue;
    echoed.insert(env.signer);
  }
  if (echoed.size() < 2 * svc.cfg.f + 1) return std::nullopt;
  return apply;
}

std::vector<std::uint32_t> deal_quorum(const std::vector<ReshareDealMsg>& deals) {
  std::vector<std::uint32_t> out;
  out.reserve(deals.size());
  for (const ReshareDealMsg& d : deals) out.push_back(d.dealer);
  return out;
}

ServicePublic reconfigured_service(const SystemConfig& cfg, const ReconfigSpec& spec,
                                   const std::vector<ReshareDealMsg>& deals) {
  const ServicePublic& old_svc = cfg.service(static_cast<ServiceRole>(spec.service));
  ServicePublic out = old_svc;  // encryption_key / signing_key NEVER change
  out.cfg.n = spec.n;
  out.cfg.f = spec.f;
  const std::vector<std::uint32_t> dealers = deal_quorum(deals);
  std::vector<threshold::FeldmanCommitments> enc_deals, sign_deals;
  enc_deals.reserve(deals.size());
  sign_deals.reserve(deals.size());
  for (const ReshareDealMsg& d : deals) {
    enc_deals.push_back(d.enc);
    sign_deals.push_back(d.sign);
  }
  out.enc_commitments = threshold::reshare_commitments(cfg.params, dealers, enc_deals);
  out.sign_commitments = threshold::reshare_commitments(cfg.params, dealers, sign_deals);
  out.server_sign_keys.clear();
  out.roster.clear();
  for (const RosterEntry& e : spec.roster) {
    out.server_sign_keys.emplace_back(cfg.params, e.sign_key);
    out.roster.push_back(e.node);
  }
  return out;
}

}  // namespace dblind::core
