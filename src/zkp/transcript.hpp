// Fiat-Shamir transcript: domain-separated, length-framed absorption of
// protocol values into SHA-256, squeezed into a challenge in Z_q.
//
// Every NIZK in the library (Schnorr, Chaum-Pedersen, VDE) derives its
// challenge through one of these, binding the proof to (a) a domain label,
// (b) an application-chosen context string (protocol instance id, server id)
// so proofs cannot be replayed across instances, and (c) all public values.
#pragma once

#include <cstdint>
#include <string_view>

#include "hash/sha256.hpp"
#include "mpz/bigint.hpp"

namespace dblind::zkp {

using mpz::Bigint;

class Transcript {
 public:
  explicit Transcript(std::string_view domain) { absorb_str(domain); }

  Transcript& absorb_str(std::string_view s) {
    absorb_len(s.size());
    h_.update(s);
    return *this;
  }

  Transcript& absorb_bytes(std::span<const std::uint8_t> bytes) {
    absorb_len(bytes.size());
    h_.update(bytes);
    return *this;
  }

  Transcript& absorb(const Bigint& v) {
    // Sign byte + magnitude, length-framed; canonical for each value.
    std::uint8_t sign = v.is_negative() ? 0xFF : (v.is_zero() ? 0x00 : 0x01);
    h_.update(std::span<const std::uint8_t>(&sign, 1));
    auto mag = v.to_bytes_be();
    absorb_len(mag.size());
    h_.update(mag);
    return *this;
  }

  // Challenge in [0, q). 2^256 mod q bias is negligible for q >= ~200 bits
  // and irrelevant for the toy test groups.
  [[nodiscard]] Bigint challenge(const Bigint& q) {
    hash::Digest d = h_.finish();
    return Bigint::from_bytes_be(d) % q;
  }

  [[nodiscard]] hash::Digest digest() { return h_.finish(); }

 private:
  void absorb_len(std::size_t n) {
    std::array<std::uint8_t, 8> len{};
    for (int i = 0; i < 8; ++i) len[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(n >> (8 * i));
    h_.update(len);
  }

  hash::Sha256 h_;
};

}  // namespace dblind::zkp
