#include "zkp/pedersen.hpp"

#include "mpz/modmath.hpp"

namespace dblind::zkp {

PedersenParams::PedersenParams(group::GroupParams params, std::string_view domain)
    : params_(std::move(params)), h_(params_.hash_to_group(domain)) {
  // h is exponentiated on every commit for the scheme's lifetime: pin it so
  // commit() combs both bases.
  params_.pin_base(h_);
}

mpz::Bigint PedersenParams::commit(const mpz::Bigint& v, const mpz::Bigint& r) const {
  return params_.mul(params_.pow_g(v), params_.pow_fixed(h_, r));
}

PedersenParams::Opening PedersenParams::commit_random(const mpz::Bigint& v,
                                                      mpz::Prng& prng) const {
  Opening o;
  o.randomness = params_.random_exponent(prng);
  o.commitment = commit(v, o.randomness);
  return o;
}

bool PedersenParams::open(const mpz::Bigint& commitment, const mpz::Bigint& v,
                          const mpz::Bigint& r) const {
  if (!params_.in_group(commitment)) return false;
  return commitment == commit(v, r);
}

mpz::Bigint PedersenParams::add(const mpz::Bigint& c1, const mpz::Bigint& c2) const {
  return params_.mul(c1, c2);
}

}  // namespace dblind::zkp
