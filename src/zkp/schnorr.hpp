// Schnorr signatures over the shared safe-prime group.
//
// Used for the per-server signing keys that make protocol messages
// self-verifying (§4.2.3), and as the base scheme for the threshold service
// signature (src/threshold/thresh_sign.*).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "group/params.hpp"
#include "mpz/bigint.hpp"
#include "mpz/random.hpp"

namespace dblind::zkp {

using group::GroupParams;
using mpz::Bigint;

struct SchnorrSignature {
  Bigint r;  // commitment g^k
  Bigint s;  // response k + e*x mod q

  friend bool operator==(const SchnorrSignature&, const SchnorrSignature&) = default;
};

// The Fiat-Shamir challenge e = H(params, commit, point, msg) mod q used by
// sign/verify. Public so that the threshold signing scheme
// (threshold/thresh_sign.*) can produce signatures verifiable by the plain
// SchnorrVerifyKey.
[[nodiscard]] Bigint schnorr_challenge(const GroupParams& params, const Bigint& commit,
                                       const Bigint& point, std::span<const std::uint8_t> msg);

class SchnorrVerifyKey {
 public:
  // P = g^x; validates P ∈ G_p.
  SchnorrVerifyKey(GroupParams params, Bigint point);

  [[nodiscard]] const Bigint& point() const { return point_; }
  [[nodiscard]] const GroupParams& params() const { return params_; }

  [[nodiscard]] bool verify(std::span<const std::uint8_t> msg, const SchnorrSignature& sig) const;

  friend bool operator==(const SchnorrVerifyKey&, const SchnorrVerifyKey&) = default;

 private:
  GroupParams params_;
  Bigint point_;
};

class SchnorrSigningKey {
 public:
  static SchnorrSigningKey generate(const GroupParams& params, mpz::Prng& prng);
  static SchnorrSigningKey from_private(const GroupParams& params, Bigint x);

  [[nodiscard]] const SchnorrVerifyKey& verify_key() const { return vk_; }
  [[nodiscard]] const Bigint& secret() const { return x_; }

  [[nodiscard]] SchnorrSignature sign(std::span<const std::uint8_t> msg, mpz::Prng& prng) const;

 private:
  SchnorrSigningKey(SchnorrVerifyKey vk, Bigint x) : vk_(std::move(vk)), x_(std::move(x)) {}

  SchnorrVerifyKey vk_;
  Bigint x_;
};

// Batch verification of many Schnorr signatures: one combined equation
//   g^{Σ c_i s_i} == Π r_i^{c_i} · Π P_i^{c_i e_i}
// with per-signature coefficients c_i derived by hashing the whole batch
// (Fiat-Shamir style: the coefficients depend on every signature, so a
// forger cannot target them). Accepts iff (whp) every signature verifies —
// the right tool for all-or-nothing checks like the paper's reveal
// validation, at roughly 2-3x the speed of individual verification for
// moderate batch sizes.
struct BatchEntry {
  const SchnorrVerifyKey* key = nullptr;
  std::span<const std::uint8_t> msg;
  const SchnorrSignature* sig = nullptr;
};

[[nodiscard]] bool schnorr_batch_verify(const GroupParams& params,
                                        std::span<const BatchEntry> batch);

}  // namespace dblind::zkp
