#include "zkp/schnorr.hpp"

#include <stdexcept>

#include "mpz/modmath.hpp"
#include "hash/sha256.hpp"
#include "zkp/transcript.hpp"

namespace dblind::zkp {

Bigint schnorr_challenge(const GroupParams& params, const Bigint& commit, const Bigint& point,
                         std::span<const std::uint8_t> msg) {
  Transcript t("dblind/schnorr-sig/v1");
  t.absorb(params.p()).absorb(params.g()).absorb(commit).absorb(point).absorb_bytes(msg);
  return t.challenge(params.q());
}

SchnorrVerifyKey::SchnorrVerifyKey(GroupParams params, Bigint point)
    : params_(std::move(params)), point_(std::move(point)) {
  if (!params_.in_group(point_))
    throw std::invalid_argument("SchnorrVerifyKey: point is not a group element");
}

bool SchnorrVerifyKey::verify(std::span<const std::uint8_t> msg,
                              const SchnorrSignature& sig) const {
  if (!params_.in_group(sig.r)) return false;
  if (sig.s.is_negative() || sig.s >= params_.q()) return false;
  Bigint e = schnorr_challenge(params_, sig.r, point_, msg);
  // g^s == r * P^e, checked as g^s * P^{-e} == r (one double exponentiation).
  Bigint neg_e = mpz::submod(Bigint(0), e, params_.q());
  return params_.pow2(params_.g(), sig.s, point_, neg_e) == sig.r;
}

SchnorrSigningKey SchnorrSigningKey::generate(const GroupParams& params, mpz::Prng& prng) {
  return from_private(params, params.random_exponent(prng));
}

SchnorrSigningKey SchnorrSigningKey::from_private(const GroupParams& params, Bigint x) {
  if (x.is_zero() || x.is_negative() || x >= params.q())
    throw std::invalid_argument("SchnorrSigningKey: secret out of Z_q^*");
  Bigint point = params.pow_g(x);
  return SchnorrSigningKey(SchnorrVerifyKey(params, std::move(point)), std::move(x));
}

SchnorrSignature SchnorrSigningKey::sign(std::span<const std::uint8_t> msg,
                                         mpz::Prng& prng) const {
  const GroupParams& params = vk_.params();
  Bigint k = params.random_exponent(prng);
  Bigint r = params.pow_g(k);
  Bigint e = schnorr_challenge(params, r, vk_.point(), msg);
  Bigint s = mpz::addmod(k, mpz::mulmod(e, x_, params.q()), params.q());
  return {std::move(r), std::move(s)};
}

bool schnorr_batch_verify(const GroupParams& params, std::span<const BatchEntry> batch) {
  if (batch.empty()) return true;
  // Derive batch coefficients c_i from the whole batch contents. 128-bit
  // coefficients keep soundness error negligible while halving the exponent
  // width of the r_i terms.
  Transcript seed("dblind/schnorr-batch/v1");
  std::vector<Bigint> challenges;
  for (const BatchEntry& e : batch) {
    if (e.key == nullptr || e.sig == nullptr) return false;
    if (!params.in_group(e.sig->r)) return false;
    if (e.sig->s.is_negative() || e.sig->s >= params.q()) return false;
    seed.absorb(e.key->point()).absorb(e.sig->r).absorb(e.sig->s).absorb_bytes(e.msg);
    challenges.push_back(schnorr_challenge(params, e.sig->r, e.key->point(), e.msg));
  }
  hash::Digest d = seed.digest();
  std::vector<Bigint> coeff;
  coeff.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Transcript t("dblind/schnorr-batch/coeff/v1");
    t.absorb_bytes(d);
    t.absorb(Bigint(static_cast<std::uint64_t>(i)));
    // 128-bit coefficient.
    hash::Digest ci = t.digest();
    coeff.push_back(Bigint::from_bytes_be(std::span<const std::uint8_t>(ci.data(), 16)));
  }

  // LHS exponent and RHS base/exponent lists.
  Bigint lhs_exp(0);
  std::vector<Bigint> bases, exps;
  bases.reserve(2 * batch.size());
  exps.reserve(2 * batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    lhs_exp = mpz::addmod(lhs_exp, mpz::mulmod(coeff[i], batch[i].sig->s, params.q()),
                          params.q());
    bases.push_back(batch[i].sig->r);
    exps.push_back(mpz::mod(coeff[i], params.q()));
    bases.push_back(batch[i].key->point());
    exps.push_back(mpz::mulmod(coeff[i], challenges[i], params.q()));
  }
  Bigint lhs = params.pow_g(lhs_exp);
  Bigint rhs = params.multi_pow(bases, exps);
  return lhs == rhs;
}

}  // namespace dblind::zkp
