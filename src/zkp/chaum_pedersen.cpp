#include "zkp/chaum_pedersen.hpp"

#include <stdexcept>

#include "mpz/modmath.hpp"
#include "zkp/transcript.hpp"

namespace dblind::zkp {

Bigint cp_challenge(const GroupParams& params, const DlogStatement& stmt, const Bigint& t1,
                    const Bigint& t2, std::string_view context) {
  Transcript t("dblind/chaum-pedersen/v1");
  t.absorb_str(context);
  t.absorb(params.p()).absorb(params.q());
  t.absorb(stmt.base1).absorb(stmt.x).absorb(stmt.base2).absorb(stmt.z);
  t.absorb(t1).absorb(t2);
  return t.challenge(params.q());
}

DlogAnnouncement dlog_announce(const GroupParams& params, const DlogStatement& stmt,
                               const Bigint& a, mpz::Prng& prng) {
  Bigint a_red = mpz::mod(a, params.q());
  if (params.pow_fixed(stmt.base1, a_red) != stmt.x ||
      params.pow_fixed(stmt.base2, a_red) != stmt.z)
    throw std::invalid_argument("dlog_prove: witness does not satisfy statement");
  DlogAnnouncement ann;
  ann.w = params.random_exponent(prng);
  ann.t1 = params.pow_fixed(stmt.base1, ann.w);
  ann.t2 = params.pow_fixed(stmt.base2, ann.w);
  return ann;
}

DlogEqProof dlog_finish(const GroupParams& params, const DlogStatement& stmt,
                        const DlogAnnouncement& ann, const Bigint& a,
                        std::string_view context) {
  DlogEqProof proof;
  proof.t1 = ann.t1;
  proof.t2 = ann.t2;
  Bigint e = cp_challenge(params, stmt, proof.t1, proof.t2, context);
  proof.s = mpz::addmod(ann.w, mpz::mulmod(e, mpz::mod(a, params.q()), params.q()),
                        params.q());
  return proof;
}

DlogEqProof dlog_prove(const GroupParams& params, const DlogStatement& stmt, const Bigint& a,
                       std::string_view context, mpz::Prng& prng) {
  return dlog_finish(params, stmt, dlog_announce(params, stmt, a, prng), a, context);
}

bool dlog_verify(const GroupParams& params, const DlogStatement& stmt, const DlogEqProof& proof,
                 std::string_view context) {
  // All statement and commitment elements must live in the prime-order
  // subgroup, otherwise the soundness argument does not apply.
  for (const Bigint* v : {&stmt.base1, &stmt.x, &stmt.base2, &stmt.z, &proof.t1, &proof.t2}) {
    if (!params.in_group(*v)) return false;
  }
  if (proof.s.is_negative() || proof.s >= params.q()) return false;
  Bigint e = cp_challenge(params, stmt, proof.t1, proof.t2, context);
  // base1^s == t1 * x^e  and  base2^s == t2 * z^e. Each side is evaluated as
  // one double exponentiation (Shamir's trick): base^s * x^{-e} == t1 with
  // x^{-e} folded in as x^{q-e}.
  Bigint neg_e = mpz::submod(Bigint(0), e, params.q());
  if (params.pow2(stmt.base1, proof.s, stmt.x, neg_e) != proof.t1) return false;
  if (params.pow2(stmt.base2, proof.s, stmt.z, neg_e) != proof.t2) return false;
  return true;
}

}  // namespace dblind::zkp
