// Random-linear-combination batch verification for Chaum-Pedersen proofs.
//
// A Chaum-Pedersen proof passes iff two product equations hold; k proofs can
// therefore be checked together by raising each equation to a fresh random
// 128-bit exponent and multiplying everything into one identity test
//
//   Π_i base1_i^{c1_i·s_i} · x_i^{-c1_i·e_i} · t1_i^{-c1_i}
//       · base2_i^{c2_i·s_i} · z_i^{-c2_i·e_i} · t2_i^{-c2_i}  ==  1   (mod p)
//
// evaluated as a single multi-exponentiation (duplicate bases merged, the
// generator g routed through its fixed-base table). If any individual proof
// is invalid the combined identity fails except with probability
// 2^-kBatchRandomizerBits (2^-|q| for toy groups with |q| < 128), so a batch
// accept/reject agrees with per-proof verification up to that bound. The
// randomizers MUST be fresh and unpredictable to the prover — they come from
// mpz::Prng, never constants (enforced by tools/lint_crypto.py).
//
// On batch failure the *_isolate variants fall back to one-at-a-time
// verification to name the culprit indices.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mpz/random.hpp"
#include "zkp/chaum_pedersen.hpp"

namespace dblind::zkp {

// Width of the per-equation random exponents; the batch soundness error is
// 2^-min(kBatchRandomizerBits, |q|).
inline constexpr std::size_t kBatchRandomizerBits = 128;

struct CpBatchItem {
  DlogStatement stmt;
  DlogEqProof proof;
  std::string context;
};

struct BatchResult {
  bool ok = true;
  std::vector<std::size_t> bad;  // item indices that fail individual verification
};

// Process-wide outcome counters for combined-identity batch checks (every
// cp_batch_verify call, including the vde and decryption-share wrappers).
// `rejected` counts combined checks that failed — i.e. runs that take (or
// would take) the serial isolation fallback. Relaxed atomics; exposed so
// obs::MetricsRegistry can attach them (attach_counter) without zkp
// depending on obs.
struct BatchVerifyCounts {
  std::atomic<std::uint64_t> combined{0};
  std::atomic<std::uint64_t> rejected{0};
};
BatchVerifyCounts& batch_verify_counts();

// True iff every item would pass dlog_verify (up to the soundness error
// above). Structural checks (subgroup membership, response range) are done
// per item before the combined identity, so malformed elements can never
// cancel each other out. An empty span verifies trivially.
[[nodiscard]] bool cp_batch_verify(const GroupParams& params, std::span<const CpBatchItem> items,
                                   mpz::Prng& prng);

// Batch check first; on failure, verifies items individually and reports the
// exact culprit indices.
[[nodiscard]] BatchResult cp_batch_verify_isolate(const GroupParams& params,
                                                  std::span<const CpBatchItem> items,
                                                  mpz::Prng& prng);

// --- cross-source aggregation (concurrent multi-transfer engine) -------------
//
// One random-linear-combination pass over Chaum-Pedersen equations collected
// from heterogeneous sources — plain CP proofs, VDE proofs (vde_lower_to_cp),
// decryption-share proofs (threshold::share_lower_to_cp) — belonging to many
// concurrent protocol instances. Each source registers its equations under a
// caller-chosen tag (a transfer id, or an index into a pending queue); one
// verify() call runs a SINGLE combined identity over everything added. Only
// on failure does it re-check per tag (still batched within the tag), so
// culprit attribution costs one extra pass per *source*, never per equation.

struct CrossBatchResult {
  bool ok = true;
  // Tags with at least one failing (or structurally poisoned) equation,
  // ascending, deduplicated.
  std::vector<std::uint64_t> bad_tags;
};

class CpCrossBatch {
 public:
  // Appends equations under `tag`. Items are copied (CpBatchItem is
  // self-contained), so callers may discard their staging storage.
  void add(std::uint64_t tag, CpBatchItem item);
  void add(std::uint64_t tag, std::span<const CpBatchItem> items);
  // Marks `tag` failed unconditionally (a source whose structural checks —
  // subgroup membership, parameter match — already rejected it). Poisoned
  // tags appear in bad_tags without probabilistic involvement.
  void poison(std::uint64_t tag);

  [[nodiscard]] std::size_t equations() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty() && poisoned_.empty(); }

  // One combined identity over every added equation; per-tag isolation on
  // failure. Randomizers from `prng` (mpz::Prng only — lint-enforced).
  [[nodiscard]] CrossBatchResult verify(const GroupParams& params, mpz::Prng& prng) const;

 private:
  std::vector<CpBatchItem> items_;
  std::vector<std::uint64_t> tags_;  // parallel to items_
  std::vector<std::uint64_t> poisoned_;
};

}  // namespace dblind::zkp
