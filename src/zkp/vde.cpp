#include "zkp/vde.hpp"

#include <stdexcept>
#include <string>

#include "mpz/modmath.hpp"

namespace dblind::zkp {

namespace {

// Per-subproof context strings; each also carries the caller's context so
// subproofs cannot be mixed and matched across VDE instances.
std::string sub_context(std::string_view context, std::string_view which) {
  std::string out = "dblind/vde/v1/";
  out += which;
  out += '/';
  out += context;
  return out;
}

struct DerivedStatements {
  DlogStatement pr1;  // G12 = y_A^{r2}
  DlogStatement pr2;  // G21 = y_B^{r1}
  DlogStatement pr3;  // (γ1/γ2)(G21/G12) = (y_A y_B)^{r1-r2}
};

DerivedStatements derive(const elgamal::PublicKey& ka, const elgamal::Ciphertext& ca,
                         const elgamal::PublicKey& kb, const elgamal::Ciphertext& cb,
                         const Bigint& g12, const Bigint& g21) {
  const group::GroupParams& params = ka.params();
  DerivedStatements d;
  // Pr1: DLOG(r2, g, δ2, y_A, G12)
  d.pr1 = {params.g(), cb.a, ka.y(), g12};
  // Pr2: DLOG(r1, g, δ1, y_B, G21)
  d.pr2 = {params.g(), ca.a, kb.y(), g21};
  // Pr3: DLOG(r1-r2, g, δ1/δ2, y_A*y_B, (γ1/γ2)(G21/G12))
  Bigint x = params.mul(ca.a, params.inv(cb.a));
  Bigint base2 = params.mul(ka.y(), kb.y());
  Bigint z = params.mul(params.mul(ca.b, params.inv(cb.b)), params.mul(g21, params.inv(g12)));
  d.pr3 = {params.g(), std::move(x), std::move(base2), std::move(z)};
  return d;
}

}  // namespace

VdeProof vde_prove(const elgamal::PublicKey& ka, const elgamal::Ciphertext& ca, const Bigint& r1,
                   const elgamal::PublicKey& kb, const elgamal::Ciphertext& cb, const Bigint& r2,
                   std::string_view context, mpz::Prng& prng) {
  const group::GroupParams& params = ka.params();
  if (!(ka.params() == kb.params()))
    throw std::invalid_argument("vde_prove: keys use different group parameters");

  VdeProof proof;
  proof.g12 = params.pow(ka.y(), r2);
  proof.g21 = params.pow(kb.y(), r1);
  DerivedStatements d = derive(ka, ca, kb, cb, proof.g12, proof.g21);
  Bigint r_diff = mpz::submod(r1, r2, params.q());
  proof.pr1 = dlog_prove(params, d.pr1, r2, sub_context(context, "pr1"), prng);
  proof.pr2 = dlog_prove(params, d.pr2, r1, sub_context(context, "pr2"), prng);
  proof.pr3 = dlog_prove(params, d.pr3, r_diff, sub_context(context, "pr3"), prng);
  return proof;
}

bool vde_verify(const elgamal::PublicKey& ka, const elgamal::Ciphertext& ca,
                const elgamal::PublicKey& kb, const elgamal::Ciphertext& cb,
                const VdeProof& proof, std::string_view context) {
  if (!(ka.params() == kb.params())) return false;
  const group::GroupParams& params = ka.params();
  // Every ciphertext component must be in the prime-order subgroup: honest
  // contributions encrypt ρ ∈ G_p, and the quotient-based conditions (3)-(5)
  // are only sound inside the subgroup.
  for (const Bigint* v : {&ca.a, &ca.b, &cb.a, &cb.b, &proof.g12, &proof.g21}) {
    if (!params.in_group(*v)) return false;
  }
  DerivedStatements d = derive(ka, ca, kb, cb, proof.g12, proof.g21);
  return dlog_verify(params, d.pr1, proof.pr1, sub_context(context, "pr1")) &&
         dlog_verify(params, d.pr2, proof.pr2, sub_context(context, "pr2")) &&
         dlog_verify(params, d.pr3, proof.pr3, sub_context(context, "pr3"));
}

}  // namespace dblind::zkp
