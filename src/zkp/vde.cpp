#include "zkp/vde.hpp"

#include <stdexcept>
#include <string>

#include "mpz/modmath.hpp"

namespace dblind::zkp {

namespace {

// Per-subproof context strings; each also carries the caller's context so
// subproofs cannot be mixed and matched across VDE instances.
std::string sub_context(std::string_view context, std::string_view which) {
  std::string out = "dblind/vde/v1/";
  out += which;
  out += '/';
  out += context;
  return out;
}

struct DerivedStatements {
  DlogStatement pr1;  // G12 = y_A^{r2}
  DlogStatement pr2;  // G21 = y_B^{r1}
  DlogStatement pr3;  // (γ1/γ2)(G21/G12) = (y_A y_B)^{r1-r2}
};

DerivedStatements derive(const elgamal::PublicKey& ka, const elgamal::Ciphertext& ca,
                         const elgamal::PublicKey& kb, const elgamal::Ciphertext& cb,
                         const Bigint& g12, const Bigint& g21) {
  const group::GroupParams& params = ka.params();
  DerivedStatements d;
  // Pr1: DLOG(r2, g, δ2, y_A, G12)
  d.pr1 = {params.g(), cb.a, ka.y(), g12};
  // Pr2: DLOG(r1, g, δ1, y_B, G21)
  d.pr2 = {params.g(), ca.a, kb.y(), g21};
  // Pr3: DLOG(r1-r2, g, δ1/δ2, y_A*y_B, (γ1/γ2)(G21/G12))
  Bigint x = params.mul(ca.a, params.inv(cb.a));
  Bigint base2 = params.mul(ka.y(), kb.y());
  Bigint z = params.mul(params.mul(ca.b, params.inv(cb.b)), params.mul(g21, params.inv(g12)));
  d.pr3 = {params.g(), std::move(x), std::move(base2), std::move(z)};
  return d;
}

}  // namespace

VdeOffline vde_prove_offline(const elgamal::PublicKey& ka, const elgamal::Ciphertext& ca,
                             const Bigint& r1, const elgamal::PublicKey& kb,
                             const elgamal::Ciphertext& cb, const Bigint& r2,
                             mpz::Prng& prng) {
  const group::GroupParams& params = ka.params();
  if (!(ka.params() == kb.params()))
    throw std::invalid_argument("vde_prove: keys use different group parameters");

  VdeOffline off;
  off.g12 = params.pow_fixed(ka.y(), r2);
  off.g21 = params.pow_fixed(kb.y(), r1);
  DerivedStatements d = derive(ka, ca, kb, cb, off.g12, off.g21);
  Bigint r_diff = mpz::submod(r1, r2, params.q());
  off.a1 = dlog_announce(params, d.pr1, r2, prng);
  off.a2 = dlog_announce(params, d.pr2, r1, prng);
  off.a3 = dlog_announce(params, d.pr3, r_diff, prng);
  return off;
}

VdeProof vde_prove_online(const elgamal::PublicKey& ka, const elgamal::Ciphertext& ca,
                          const Bigint& r1, const elgamal::PublicKey& kb,
                          const elgamal::Ciphertext& cb, const Bigint& r2,
                          const VdeOffline& offline, std::string_view context) {
  const group::GroupParams& params = ka.params();
  VdeProof proof;
  proof.g12 = offline.g12;
  proof.g21 = offline.g21;
  // Re-deriving the statements costs a few modular multiplications and
  // inversions — no exponentiations. The challenges hash the same statement
  // elements the one-shot prover hashes, so the verifier sees no difference.
  DerivedStatements d = derive(ka, ca, kb, cb, proof.g12, proof.g21);
  Bigint r_diff = mpz::submod(r1, r2, params.q());
  proof.pr1 = dlog_finish(params, d.pr1, offline.a1, r2, sub_context(context, "pr1"));
  proof.pr2 = dlog_finish(params, d.pr2, offline.a2, r1, sub_context(context, "pr2"));
  proof.pr3 = dlog_finish(params, d.pr3, offline.a3, r_diff, sub_context(context, "pr3"));
  return proof;
}

VdeProof vde_prove(const elgamal::PublicKey& ka, const elgamal::Ciphertext& ca, const Bigint& r1,
                   const elgamal::PublicKey& kb, const elgamal::Ciphertext& cb, const Bigint& r2,
                   std::string_view context, mpz::Prng& prng) {
  return vde_prove_online(ka, ca, r1, kb, cb, r2,
                          vde_prove_offline(ka, ca, r1, kb, cb, r2, prng), context);
}

bool vde_verify(const elgamal::PublicKey& ka, const elgamal::Ciphertext& ca,
                const elgamal::PublicKey& kb, const elgamal::Ciphertext& cb,
                const VdeProof& proof, std::string_view context) {
  if (!(ka.params() == kb.params())) return false;
  const group::GroupParams& params = ka.params();
  // Every ciphertext component must be in the prime-order subgroup: honest
  // contributions encrypt ρ ∈ G_p, and the quotient-based conditions (3)-(5)
  // are only sound inside the subgroup.
  for (const Bigint* v : {&ca.a, &ca.b, &cb.a, &cb.b, &proof.g12, &proof.g21}) {
    if (!params.in_group(*v)) return false;
  }
  DerivedStatements d = derive(ka, ca, kb, cb, proof.g12, proof.g21);
  return dlog_verify(params, d.pr1, proof.pr1, sub_context(context, "pr1")) &&
         dlog_verify(params, d.pr2, proof.pr2, sub_context(context, "pr2")) &&
         dlog_verify(params, d.pr3, proof.pr3, sub_context(context, "pr3"));
}

bool vde_lower_to_cp(const group::GroupParams& params, const VdeBatchItem& item,
                     std::vector<CpBatchItem>& out) {
  // Mirror vde_verify's structural gate per item before anything is folded
  // into a combined equation.
  if (!(item.ka->params() == params) || !(item.kb->params() == params)) return false;
  for (const Bigint* v :
       {&item.ca->a, &item.ca->b, &item.cb->a, &item.cb->b, &item.proof->g12, &item.proof->g21}) {
    if (!params.in_group(*v)) return false;
  }
  DerivedStatements d =
      derive(*item.ka, *item.ca, *item.kb, *item.cb, item.proof->g12, item.proof->g21);
  out.push_back({std::move(d.pr1), item.proof->pr1, sub_context(item.context, "pr1")});
  out.push_back({std::move(d.pr2), item.proof->pr2, sub_context(item.context, "pr2")});
  out.push_back({std::move(d.pr3), item.proof->pr3, sub_context(item.context, "pr3")});
  return true;
}

bool vde_batch_verify(std::span<const VdeBatchItem> items, mpz::Prng& prng) {
  if (items.empty()) return true;
  const group::GroupParams& params = items.front().ka->params();
  std::vector<CpBatchItem> cp;
  cp.reserve(3 * items.size());
  for (const VdeBatchItem& it : items) {
    if (!vde_lower_to_cp(params, it, cp)) return false;
  }
  return cp_batch_verify(params, cp, prng);
}

BatchResult vde_batch_verify_isolate(std::span<const VdeBatchItem> items, mpz::Prng& prng) {
  BatchResult r;
  if (vde_batch_verify(items, prng)) return r;
  r.ok = false;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const VdeBatchItem& it = items[i];
    if (!vde_verify(*it.ka, *it.ca, *it.kb, *it.cb, *it.proof, it.context)) r.bad.push_back(i);
  }
  return r;
}

}  // namespace dblind::zkp
