// Verifiable Dual Encryption (paper §4.2.2).
//
// VDE(E_A(ρ), E_B(ρ')) certifies — without revealing the plaintexts — that
// two ElGamal ciphertexts under different public keys K_A and K_B encrypt the
// same value (ρ = ρ'). The prover knows the encryption nonces r1, r2 but NOT
// the private keys; that is what distinguishes VDE from Jakobsson's
// translation certificates (§5). The construction is exactly the paper's:
// three Chaum-Pedersen DLOG-equality proofs Pr1..Pr3 for conditions (3)-(5).
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "elgamal/elgamal.hpp"
#include "zkp/batch.hpp"
#include "zkp/chaum_pedersen.hpp"

namespace dblind::zkp {

struct VdeProof {
  Bigint g12;  // y_A^{r2}  = g^{k_A r_2}, condition (3)
  Bigint g21;  // y_B^{r1}  = g^{k_B r_1}, condition (4)
  DlogEqProof pr1;
  DlogEqProof pr2;
  DlogEqProof pr3;

  friend bool operator==(const VdeProof&, const VdeProof&) = default;
};

// Offline half of VDE proving: everything that depends only on the service
// keys and the prover's own randomness — G12/G21 and the three Chaum-
// Pedersen announcements. All of it is fixed-base exponentiation (g, y_A,
// y_B, y_A·y_B), so with pinned comb tables it is both cheap and entirely
// off the critical path. Contains commitment randomness (a1..a3.w): secret
// until the proof is finished, strictly single-use (see DlogAnnouncement).
struct VdeOffline {
  Bigint g12;  // y_A^{r2}
  Bigint g21;  // y_B^{r1}
  DlogAnnouncement a1;  // for Pr1, witness r2
  DlogAnnouncement a2;  // for Pr2, witness r1
  DlogAnnouncement a3;  // for Pr3, witness r1-r2
};

// Computes the offline half for ca = E_A(ρ, r1), cb = E_B(ρ, r2). Throws
// std::invalid_argument when the witnesses do not match the ciphertexts.
// Draws exactly the three announcement exponents from `prng`, in Pr1..Pr3
// order — the same stream positions vde_prove consumes.
[[nodiscard]] VdeOffline vde_prove_offline(const elgamal::PublicKey& ka,
                                           const elgamal::Ciphertext& ca, const Bigint& r1,
                                           const elgamal::PublicKey& kb,
                                           const elgamal::Ciphertext& cb, const Bigint& r2,
                                           mpz::Prng& prng);

// Online half: binds the Fiat-Shamir challenges of all three subproofs to
// `context` (exactly as vde_prove does) and computes the responses. No group
// exponentiations, no randomness. The offline bundle must have been produced
// by vde_prove_offline for the SAME (ka, ca, r1, kb, cb, r2) and must be
// used at most once.
[[nodiscard]] VdeProof vde_prove_online(const elgamal::PublicKey& ka,
                                        const elgamal::Ciphertext& ca, const Bigint& r1,
                                        const elgamal::PublicKey& kb,
                                        const elgamal::Ciphertext& cb, const Bigint& r2,
                                        const VdeOffline& offline, std::string_view context);

// Creates VDE(ca, cb) for ca = E_A(ρ, r1), cb = E_B(ρ, r2). The caller must
// supply the nonces used in the two encryptions; throws std::invalid_argument
// when the witnesses do not match the ciphertexts (e.g. plaintexts differ).
// Exactly vde_prove_online(vde_prove_offline(...)) — same prng draws, same
// proof bytes.
[[nodiscard]] VdeProof vde_prove(const elgamal::PublicKey& ka, const elgamal::Ciphertext& ca,
                                 const Bigint& r1, const elgamal::PublicKey& kb,
                                 const elgamal::Ciphertext& cb, const Bigint& r2,
                                 std::string_view context, mpz::Prng& prng);

// Verifies that ca (under ka) and cb (under kb) encrypt the same plaintext.
[[nodiscard]] bool vde_verify(const elgamal::PublicKey& ka, const elgamal::Ciphertext& ca,
                              const elgamal::PublicKey& kb, const elgamal::Ciphertext& cb,
                              const VdeProof& proof, std::string_view context);

// One entry of a VDE batch. Pointed-to objects must outlive the call.
struct VdeBatchItem {
  const elgamal::PublicKey* ka;
  const elgamal::Ciphertext* ca;
  const elgamal::PublicKey* kb;
  const elgamal::Ciphertext* cb;
  const VdeProof* proof;
  std::string context;
};

// Batch-verifies k VDE proofs (3k Chaum-Pedersen equations) in one
// random-linear-combination multi-exponentiation; accepts iff every item
// would pass vde_verify, up to the 2^-kBatchRandomizerBits soundness error.
// All items must share one group parameter set.
[[nodiscard]] bool vde_batch_verify(std::span<const VdeBatchItem> items, mpz::Prng& prng);

// Batch check first; on failure names the failing VDE item indices via
// individual vde_verify.
[[nodiscard]] BatchResult vde_batch_verify_isolate(std::span<const VdeBatchItem> items,
                                                   mpz::Prng& prng);

// Lowers one VDE item to its three Chaum-Pedersen equations — exactly what
// vde_batch_verify folds per item — for cross-instance aggregation via
// zkp::CpCrossBatch. Returns false (appending nothing) when the item fails
// the structural gate that vde_verify rejects unconditionally: parameter
// mismatch against `params`, or a component outside the prime-order subgroup.
[[nodiscard]] bool vde_lower_to_cp(const group::GroupParams& params, const VdeBatchItem& item,
                                   std::vector<CpBatchItem>& out);

}  // namespace dblind::zkp
