// Chaum-Pedersen non-interactive proof of discrete-logarithm equality.
//
// DLOG(a, g, X, Y, Z) shows a = log_g X = log_Y Z without disclosing a
// (paper §4.2.2, citing Chaum-Pedersen '92). Made non-interactive with the
// Fiat-Shamir transform; the `context` argument binds a proof to its protocol
// instance so it cannot be replayed elsewhere.
#pragma once

#include <string_view>

#include "group/params.hpp"
#include "mpz/bigint.hpp"
#include "mpz/random.hpp"

namespace dblind::zkp {

using group::GroupParams;
using mpz::Bigint;

struct DlogStatement {
  Bigint base1;  // g
  Bigint x;      // g^a
  Bigint base2;  // Y
  Bigint z;      // Y^a
};

struct DlogEqProof {
  Bigint t1;  // base1^w
  Bigint t2;  // base2^w
  Bigint s;   // w + e*a mod q

  friend bool operator==(const DlogEqProof&, const DlogEqProof&) = default;
};

// Commit-phase output of the prover, produced before the Fiat-Shamir
// challenge exists. Everything in here depends only on the statement bases
// and the witness — never on the instance context — which is what makes the
// offline/online split of VDE proving (zkp/vde.hpp, core/contribution_pool)
// possible: announcements are computed ahead of time, the challenge is bound
// to the transfer transcript later, exactly as in the one-shot prover.
// `w` is secret until the proof is finished; an announcement must be used for
// at most ONE dlog_finish call (re-finishing with two different challenges
// would reveal the witness: a = (s - s') / (e - e')).
struct DlogAnnouncement {
  Bigint w;   // commitment randomness (secret)
  Bigint t1;  // base1^w
  Bigint t2;  // base2^w
};

// Offline half: checks the witness, draws w and computes the announcements
// (all fixed-base when the statement bases are pinned; see
// GroupParams::pin_base). Precondition (checked): the statement is
// consistent with `a`.
[[nodiscard]] DlogAnnouncement dlog_announce(const GroupParams& params,
                                             const DlogStatement& stmt, const Bigint& a,
                                             mpz::Prng& prng);

// Online half: binds the Fiat-Shamir challenge to `context` and computes the
// response s = w + e·a mod q. No group exponentiations and no randomness —
// pure transcript hashing plus scalar arithmetic.
[[nodiscard]] DlogEqProof dlog_finish(const GroupParams& params, const DlogStatement& stmt,
                                      const DlogAnnouncement& ann, const Bigint& a,
                                      std::string_view context);

// Proves knowledge of `a` with stmt.x == base1^a and stmt.z == base2^a.
// Precondition (checked): the statement is consistent with `a`. Exactly
// dlog_finish(dlog_announce(...)) — one prng draw, same proof bytes.
[[nodiscard]] DlogEqProof dlog_prove(const GroupParams& params, const DlogStatement& stmt,
                                     const Bigint& a, std::string_view context, mpz::Prng& prng);

[[nodiscard]] bool dlog_verify(const GroupParams& params, const DlogStatement& stmt,
                               const DlogEqProof& proof, std::string_view context);

// The Fiat-Shamir challenge used by dlog_prove/dlog_verify. Exposed so the
// batch verifier (zkp/batch.hpp) reproduces the exact per-proof challenges;
// not otherwise part of the proving API.
[[nodiscard]] Bigint cp_challenge(const GroupParams& params, const DlogStatement& stmt,
                                  const Bigint& t1, const Bigint& t2, std::string_view context);

}  // namespace dblind::zkp
