// Chaum-Pedersen non-interactive proof of discrete-logarithm equality.
//
// DLOG(a, g, X, Y, Z) shows a = log_g X = log_Y Z without disclosing a
// (paper §4.2.2, citing Chaum-Pedersen '92). Made non-interactive with the
// Fiat-Shamir transform; the `context` argument binds a proof to its protocol
// instance so it cannot be replayed elsewhere.
#pragma once

#include <string_view>

#include "group/params.hpp"
#include "mpz/bigint.hpp"
#include "mpz/random.hpp"

namespace dblind::zkp {

using group::GroupParams;
using mpz::Bigint;

struct DlogStatement {
  Bigint base1;  // g
  Bigint x;      // g^a
  Bigint base2;  // Y
  Bigint z;      // Y^a
};

struct DlogEqProof {
  Bigint t1;  // base1^w
  Bigint t2;  // base2^w
  Bigint s;   // w + e*a mod q

  friend bool operator==(const DlogEqProof&, const DlogEqProof&) = default;
};

// Proves knowledge of `a` with stmt.x == base1^a and stmt.z == base2^a.
// Precondition (checked): the statement is consistent with `a`.
[[nodiscard]] DlogEqProof dlog_prove(const GroupParams& params, const DlogStatement& stmt,
                                     const Bigint& a, std::string_view context, mpz::Prng& prng);

[[nodiscard]] bool dlog_verify(const GroupParams& params, const DlogStatement& stmt,
                               const DlogEqProof& proof, std::string_view context);

// The Fiat-Shamir challenge used by dlog_prove/dlog_verify. Exposed so the
// batch verifier (zkp/batch.hpp) reproduces the exact per-proof challenges;
// not otherwise part of the proving API.
[[nodiscard]] Bigint cp_challenge(const GroupParams& params, const DlogStatement& stmt,
                                  const Bigint& t1, const Bigint& t2, std::string_view context);

}  // namespace dblind::zkp
