#include "zkp/batch.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "mpz/modmath.hpp"

namespace dblind::zkp {

namespace {

// Accumulates base → exponent (mod q) pairs, merging repeated bases. The
// verification equations share many bases (g appears in every item, service
// keys and ciphertext components repeat across a quorum), so merging shrinks
// the final multi-exponentiation considerably.
class ExpAccumulator {
 public:
  explicit ExpAccumulator(const GroupParams& params) : params_(params) {}

  void add(const Bigint& base, const Bigint& exp) {
    if (exp.is_zero()) return;
    auto [it, fresh] = terms_.try_emplace(base, exp);
    if (!fresh) it->second = mpz::addmod(it->second, exp, params_.q());
  }

  // Π base^exp, with g routed through the fixed-base table.
  [[nodiscard]] Bigint evaluate() const {
    std::vector<Bigint> bases;
    std::vector<Bigint> exps;
    bases.reserve(terms_.size());
    exps.reserve(terms_.size());
    Bigint g_exp(0);
    for (const auto& [base, exp] : terms_) {
      if (base == params_.g()) {
        g_exp = exp;
      } else {
        bases.push_back(base);
        exps.push_back(exp);
      }
    }
    Bigint acc = params_.multi_pow(bases, exps);
    if (!g_exp.is_zero()) acc = params_.mul(acc, params_.pow_g(g_exp));
    return acc;
  }

 private:
  const GroupParams& params_;
  std::map<Bigint, Bigint> terms_;
};

bool cp_batch_verify_impl(const GroupParams& params, std::span<const CpBatchItem> items,
                          mpz::Prng& prng) {
  if (items.empty()) return true;
  const Bigint& q = params.q();
  // Randomizers below min(2^128, q): drawing below q directly (toy groups)
  // keeps them nonzero mod q, so no equation can silently drop out.
  Bigint bound = Bigint(1).shl(kBatchRandomizerBits);
  if (q < bound) bound = q;

  ExpAccumulator acc(params);
  for (const CpBatchItem& item : items) {
    const DlogStatement& stmt = item.stmt;
    const DlogEqProof& proof = item.proof;
    // Same structural gate as dlog_verify; done per item so a value outside
    // the subgroup is rejected unconditionally, not probabilistically.
    for (const Bigint* v : {&stmt.base1, &stmt.x, &stmt.base2, &stmt.z, &proof.t1, &proof.t2}) {
      if (!params.in_group(*v)) return false;
    }
    if (proof.s.is_negative() || proof.s >= q) return false;

    Bigint e = cp_challenge(params, stmt, proof.t1, proof.t2, item.context);
    Bigint c1 = prng.uniform_nonzero_below(bound);
    Bigint c2 = prng.uniform_nonzero_below(bound);
    // base1^s == t1·x^e scaled by c1:  base1^{c1·s} · x^{-c1·e} · t1^{-c1}.
    acc.add(stmt.base1, mpz::mulmod(c1, proof.s, q));
    acc.add(stmt.x, mpz::submod(Bigint(0), mpz::mulmod(c1, e, q), q));
    acc.add(proof.t1, mpz::submod(Bigint(0), c1, q));
    // base2^s == t2·z^e scaled by c2.
    acc.add(stmt.base2, mpz::mulmod(c2, proof.s, q));
    acc.add(stmt.z, mpz::submod(Bigint(0), mpz::mulmod(c2, e, q), q));
    acc.add(proof.t2, mpz::submod(Bigint(0), c2, q));
  }
  return params.is_identity(acc.evaluate());
}

}  // namespace

BatchVerifyCounts& batch_verify_counts() {
  static BatchVerifyCounts counts;
  return counts;
}

bool cp_batch_verify(const GroupParams& params, std::span<const CpBatchItem> items,
                     mpz::Prng& prng) {
  BatchVerifyCounts& bc = batch_verify_counts();
  bc.combined.fetch_add(1, std::memory_order_relaxed);
  const bool ok = cp_batch_verify_impl(params, items, prng);
  if (!ok) bc.rejected.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

BatchResult cp_batch_verify_isolate(const GroupParams& params, std::span<const CpBatchItem> items,
                                    mpz::Prng& prng) {
  BatchResult r;
  if (cp_batch_verify(params, items, prng)) return r;
  r.ok = false;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!dlog_verify(params, items[i].stmt, items[i].proof, items[i].context))
      r.bad.push_back(i);
  }
  return r;
}

void CpCrossBatch::add(std::uint64_t tag, CpBatchItem item) {
  items_.push_back(std::move(item));
  tags_.push_back(tag);
}

void CpCrossBatch::add(std::uint64_t tag, std::span<const CpBatchItem> items) {
  for (const CpBatchItem& item : items) add(tag, item);
}

void CpCrossBatch::poison(std::uint64_t tag) { poisoned_.push_back(tag); }

CrossBatchResult CpCrossBatch::verify(const GroupParams& params, mpz::Prng& prng) const {
  CrossBatchResult r;
  r.bad_tags = poisoned_;
  // The happy path is ONE combined identity across every source. Poisoned
  // tags do not spoil it: their equations were never added.
  if (!cp_batch_verify(params, items_, prng)) {
    // Attribution pass: group equations by tag, re-verify each source's own
    // equations as a (much smaller) batch. A source is bad iff its own batch
    // fails — per-equation serial fallback is never needed because verdicts
    // are per source.
    std::map<std::uint64_t, std::vector<CpBatchItem>> by_tag;
    for (std::size_t i = 0; i < items_.size(); ++i) by_tag[tags_[i]].push_back(items_[i]);
    for (const auto& [tag, group_items] : by_tag) {
      if (!cp_batch_verify(params, group_items, prng)) r.bad_tags.push_back(tag);
    }
  }
  std::sort(r.bad_tags.begin(), r.bad_tags.end());
  r.bad_tags.erase(std::unique(r.bad_tags.begin(), r.bad_tags.end()), r.bad_tags.end());
  r.ok = r.bad_tags.empty();
  return r;
}

}  // namespace dblind::zkp
