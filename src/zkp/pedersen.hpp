// Pedersen commitments over the safe-prime group.
//
// C = g^v · h^r where h = hash_to_group(domain) has unknown discrete log
// w.r.t. g. Perfectly hiding (any C is consistent with any v) and
// computationally binding (opening two values implies log_g h). Paper ref
// [30]; used here by the Pedersen-VSS extension (threshold/pedersen_vss.*),
// which removes Feldman's g^{a_j} leakage of the shared polynomial in the
// exponent.
#pragma once

#include <string_view>

#include "group/params.hpp"
#include "mpz/random.hpp"

namespace dblind::zkp {

class PedersenParams {
 public:
  // Derives the second base h from `domain`; different domains give
  // independent commitment schemes.
  PedersenParams(group::GroupParams params, std::string_view domain);

  [[nodiscard]] const group::GroupParams& group() const { return params_; }
  [[nodiscard]] const mpz::Bigint& h() const { return h_; }

  // C = g^v · h^r; v, r taken mod q.
  [[nodiscard]] mpz::Bigint commit(const mpz::Bigint& v, const mpz::Bigint& r) const;
  // Commitment with fresh randomness; returns {C, r}.
  struct Opening {
    mpz::Bigint commitment;
    mpz::Bigint randomness;
  };
  [[nodiscard]] Opening commit_random(const mpz::Bigint& v, mpz::Prng& prng) const;
  // Checks C == g^v · h^r.
  [[nodiscard]] bool open(const mpz::Bigint& commitment, const mpz::Bigint& v,
                          const mpz::Bigint& r) const;

  // Homomorphism: commit(v1, r1) * commit(v2, r2) == commit(v1+v2, r1+r2).
  [[nodiscard]] mpz::Bigint add(const mpz::Bigint& c1, const mpz::Bigint& c2) const;

 private:
  group::GroupParams params_;
  mpz::Bigint h_;
};

}  // namespace dblind::zkp
