#include "threshold/thresh_decrypt.hpp"

#include <set>
#include <stdexcept>
#include <vector>

#include "mpz/modmath.hpp"

namespace dblind::threshold {

DecryptionShare make_decryption_share(const group::GroupParams& params,
                                      const elgamal::Ciphertext& c, const Share& share,
                                      std::string_view context, mpz::Prng& prng) {
  DecryptionShare out;
  out.index = share.index;
  out.d = params.pow(c.a, share.value);
  // DLOG(x_i, g, h_i, a, d_i): same exponent links the verification key and
  // the decryption share.
  zkp::DlogStatement stmt{params.g(), params.pow_g(share.value), c.a, out.d};
  out.proof = zkp::dlog_prove(params, stmt, share.value, context, prng);
  return out;
}

bool verify_decryption_share(const group::GroupParams& params,
                             const FeldmanCommitments& commitments, const elgamal::Ciphertext& c,
                             const DecryptionShare& ds, std::string_view context) {
  if (ds.index == 0) return false;
  Bigint h_i = feldman_eval(params, commitments, ds.index);
  zkp::DlogStatement stmt{params.g(), std::move(h_i), c.a, ds.d};
  return zkp::dlog_verify(params, stmt, ds.proof, context);
}

bool share_lower_to_cp(const group::GroupParams& params, const FeldmanCommitments& commitments,
                       const elgamal::Ciphertext& c, const DecryptionShare& ds,
                       std::string_view context, std::vector<zkp::CpBatchItem>& out) {
  if (ds.index == 0) return false;
  Bigint h_i = feldman_eval(params, commitments, ds.index);
  out.push_back({zkp::DlogStatement{params.g(), std::move(h_i), c.a, ds.d}, ds.proof,
                 std::string(context)});
  return true;
}

bool batch_verify_decryption_shares(const group::GroupParams& params,
                                    const FeldmanCommitments& commitments,
                                    const elgamal::Ciphertext& c,
                                    std::span<const DecryptionShare> shares,
                                    std::string_view context, mpz::Prng& prng) {
  std::vector<zkp::CpBatchItem> items;
  items.reserve(shares.size());
  for (const DecryptionShare& ds : shares) {
    if (!share_lower_to_cp(params, commitments, c, ds, context, items)) return false;
  }
  return zkp::cp_batch_verify(params, items, prng);
}

zkp::BatchResult batch_verify_decryption_shares_isolate(
    const group::GroupParams& params, const FeldmanCommitments& commitments,
    const elgamal::Ciphertext& c, std::span<const DecryptionShare> shares,
    std::string_view context, mpz::Prng& prng) {
  zkp::BatchResult r;
  if (batch_verify_decryption_shares(params, commitments, c, shares, context, prng)) return r;
  r.ok = false;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (!verify_decryption_share(params, commitments, c, shares[i], context)) r.bad.push_back(i);
  }
  return r;
}

Bigint combine_decryption(const group::GroupParams& params, const elgamal::Ciphertext& c,
                          std::span<const DecryptionShare> shares) {
  if (shares.empty()) throw std::invalid_argument("combine_decryption: no shares");
  std::vector<std::uint32_t> indices;
  std::set<std::uint32_t> seen;
  for (const DecryptionShare& s : shares) {
    if (!seen.insert(s.index).second)
      throw std::invalid_argument("combine_decryption: duplicate share index");
    indices.push_back(s.index);
  }
  // a^k = Π d_i^{λ_i}; m = b / a^k.
  Bigint ak = params.identity();
  for (const DecryptionShare& s : shares) {
    Bigint lambda = lagrange_at_zero(indices, s.index, params.q());
    ak = params.mul(ak, params.pow(s.d, lambda));
  }
  return params.mul(c.b, params.inv(ak));
}

}  // namespace dblind::threshold
