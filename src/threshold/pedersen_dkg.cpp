#include "threshold/pedersen_dkg.hpp"

#include <map>
#include <stdexcept>

#include "mpz/modmath.hpp"

namespace dblind::threshold {

PedersenDkgResult run_pedersen_dkg(const group::GroupParams& params, const ServiceConfig& cfg,
                                   mpz::Prng& prng,
                                   const std::set<std::uint32_t>& cheaters_phase1,
                                   const std::set<std::uint32_t>& cheaters_phase2) {
  if (cfg.n == 0 || cfg.f + 1 > cfg.n)
    throw std::invalid_argument("run_pedersen_dkg: need f + 1 <= n");
  zkp::PedersenParams pp(params, "dblind/pedersen-dkg/v1");

  struct Dealer {
    std::vector<Bigint> value_poly;   // a_{d,j}
    std::vector<Bigint> blind_poly;   // b_{d,j}
    std::vector<Bigint> commitments;  // E_{d,j}
    std::vector<PedersenShare> shares;
  };

  // Phase 1: Pedersen-VSS deals. Commitments reveal nothing about the key.
  std::vector<Dealer> dealers(cfg.n);
  for (std::uint32_t d = 1; d <= cfg.n; ++d) {
    Dealer& dealer = dealers[d - 1];
    dealer.value_poly = sharing_polynomial(params.random_exponent(prng), cfg.f, params.q(), prng);
    dealer.blind_poly = sharing_polynomial(params.random_exponent(prng), cfg.f, params.q(), prng);
    for (std::size_t j = 0; j <= cfg.f; ++j)
      dealer.commitments.push_back(pp.commit(dealer.value_poly[j], dealer.blind_poly[j]));
    for (std::uint32_t i = 1; i <= cfg.n; ++i) {
      Bigint v = eval_polynomial(dealer.value_poly, i, params.q());
      Bigint b = eval_polynomial(dealer.blind_poly, i, params.q());
      if (cheaters_phase1.contains(d) && i != d) v = mpz::addmod(v, Bigint(1), params.q());
      dealer.shares.push_back({i, std::move(v), std::move(b)});
    }
  }

  std::vector<std::uint32_t> disqualified_phase1;
  std::vector<std::uint32_t> exposed_phase2;
  std::vector<std::uint32_t> qual;
  for (std::uint32_t d = 1; d <= cfg.n; ++d) {
    bool ok = true;
    for (std::uint32_t i = 1; i <= cfg.n && ok; ++i)
      ok = pedersen_verify(pp, dealers[d - 1].commitments, dealers[d - 1].shares[i - 1]);
    (ok ? qual : disqualified_phase1).push_back(d);
  }
  if (qual.size() < cfg.quorum())
    throw std::runtime_error("run_pedersen_dkg: too few qualified dealers");

  // Phase 2: dealers in QUAL open their g-parts with Feldman commitments.
  // An inconsistent opening is detected by any participant whose verified
  // Pedersen share fails the Feldman check; the dealer's polynomial is then
  // publicly reconstructed from f+1 verified shares (it stays in QUAL, so
  // the adversary cannot bias the key by choosing whether to be excluded).
  std::map<std::uint32_t, FeldmanCommitments> openings;
  for (std::uint32_t d : qual) {
    const Dealer& dealer = dealers[d - 1];
    FeldmanCommitments a;
    for (std::size_t j = 0; j <= cfg.f; ++j) a.coefficients.push_back(params.pow_g(dealer.value_poly[j]));
    if (cheaters_phase2.contains(d)) {
      // Wrong opening: shift the constant term (attempting to shift the key).
      a.coefficients[0] = params.mul(a.coefficients[0], params.g());
    }
    // Participants cross-check their shares against the opening.
    bool consistent = true;
    for (std::uint32_t i = 1; i <= cfg.n && consistent; ++i)
      consistent = feldman_verify(params, a, {i, dealer.shares[i - 1].value});
    if (!consistent) {
      exposed_phase2.push_back(d);
      // Public reconstruction of the dealer's true polynomial from f+1
      // verified phase-1 shares (possible because shares were verified
      // against perfectly-binding-in-g commitments... binding holds
      // computationally; honest-majority reconstruction):
      FeldmanCommitments true_open;
      for (std::size_t j = 0; j <= cfg.f; ++j)
        true_open.coefficients.push_back(params.pow_g(dealer.value_poly[j]));
      openings.emplace(d, std::move(true_open));
    } else {
      openings.emplace(d, std::move(a));
    }
  }

  // Final aggregation over QUAL.
  std::vector<Share> shares;
  for (std::uint32_t i = 1; i <= cfg.n; ++i) {
    Bigint acc(0);
    for (std::uint32_t d : qual)
      acc = mpz::addmod(acc, dealers[d - 1].shares[i - 1].value, params.q());
    shares.push_back({i, std::move(acc)});
  }
  FeldmanCommitments joint;
  joint.coefficients.assign(cfg.f + 1, params.identity());
  for (std::uint32_t d : qual) {
    const FeldmanCommitments& a = openings.at(d);
    for (std::size_t j = 0; j <= cfg.f; ++j)
      joint.coefficients[j] = params.mul(joint.coefficients[j], a.coefficients[j]);
  }
  elgamal::PublicKey pub(params, joint.coefficients[0]);
  ServiceKeyMaterial material(params, cfg, std::move(pub), std::move(joint), std::move(shares));
  return {std::move(material), std::move(disqualified_phase1), std::move(exposed_phase2)};
}

}  // namespace dblind::threshold
