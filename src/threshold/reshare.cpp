#include "threshold/reshare.hpp"

#include <stdexcept>

#include "mpz/modmath.hpp"

namespace dblind::threshold {

ReshareDeal reshare_deal(const group::GroupParams& params, const Share& old_share,
                         std::size_t new_n, std::size_t new_f, mpz::Prng& prng) {
  if (old_share.index == 0) throw std::invalid_argument("reshare_deal: bad dealer index");
  if (new_f + 1 > new_n) throw std::invalid_argument("reshare_deal: f' + 1 > n'");
  ReshareDeal deal;
  deal.dealer = old_share.index;
  std::vector<Bigint> poly = sharing_polynomial(old_share.value, new_f, params.q(), prng);
  deal.commitments = feldman_commit(params, poly);
  deal.subshares.reserve(new_n);
  for (std::uint32_t j = 1; j <= new_n; ++j)
    deal.subshares.push_back({j, eval_polynomial(poly, j, params.q())});
  return deal;
}

bool reshare_verify_commitments(const group::GroupParams& params,
                                const FeldmanCommitments& old_commitments,
                                const ReshareDeal& deal, std::size_t new_f) {
  if (deal.dealer == 0) return false;
  if (deal.commitments.coefficients.size() != new_f + 1) return false;
  for (const Bigint& c : deal.commitments.coefficients) {
    if (!params.in_group(c)) return false;
  }
  // The dealt constant term must be the dealer's OLD share: its commitment
  // g^{Q_i(0)} must equal the old verification key g^{s_i}.
  return deal.commitments.coefficients[0] == feldman_eval(params, old_commitments, deal.dealer);
}

bool reshare_verify_subshare(const group::GroupParams& params,
                             const FeldmanCommitments& deal_commitments, const Share& subshare) {
  if (subshare.index == 0) return false;
  if (!params.is_exponent(subshare.value)) return false;
  return feldman_verify(params, deal_commitments, subshare);
}

namespace {

std::vector<Bigint> lagrange_weights(std::span<const std::uint32_t> dealers, const Bigint& q) {
  if (dealers.empty()) throw std::invalid_argument("reshare: empty dealer quorum");
  std::set<std::uint32_t> distinct(dealers.begin(), dealers.end());
  if (distinct.size() != dealers.size() || distinct.contains(0))
    throw std::invalid_argument("reshare: dealer ranks must be distinct and nonzero");
  std::vector<Bigint> weights;
  weights.reserve(dealers.size());
  for (std::uint32_t i : dealers) weights.push_back(lagrange_at_zero(dealers, i, q));
  return weights;
}

}  // namespace

Share reshare_apply(const group::GroupParams& params, std::span<const std::uint32_t> dealers,
                    std::span<const Bigint> subs, std::uint32_t recipient) {
  if (dealers.size() != subs.size())
    throw std::invalid_argument("reshare_apply: dealer/sub-share count mismatch");
  if (recipient == 0) throw std::invalid_argument("reshare_apply: bad recipient");
  std::vector<Bigint> lambda = lagrange_weights(dealers, params.q());
  Bigint acc(0);
  for (std::size_t k = 0; k < subs.size(); ++k) {
    acc = mpz::addmod(acc, mpz::mulmod(lambda[k], subs[k], params.q()), params.q());
  }
  return {recipient, std::move(acc)};
}

FeldmanCommitments reshare_commitments(const group::GroupParams& params,
                                       std::span<const std::uint32_t> dealers,
                                       std::span<const FeldmanCommitments> deals) {
  if (dealers.size() != deals.size() || deals.empty())
    throw std::invalid_argument("reshare_commitments: dealer/deal count mismatch");
  std::vector<Bigint> lambda = lagrange_weights(dealers, params.q());
  const std::size_t degree_plus_1 = deals[0].coefficients.size();
  FeldmanCommitments out;
  out.coefficients.reserve(degree_plus_1);
  std::vector<Bigint> bases(deals.size());
  for (std::size_t k = 0; k < degree_plus_1; ++k) {
    for (std::size_t i = 0; i < deals.size(); ++i) {
      if (deals[i].coefficients.size() != degree_plus_1)
        throw std::invalid_argument("reshare_commitments: degree mismatch");
      bases[i] = deals[i].coefficients[k];
    }
    out.coefficients.push_back(params.multi_pow(bases, lambda));
  }
  return out;
}

ServiceKeyMaterial reshare_service(const ServiceKeyMaterial& old_material,
                                   const ServiceConfig& new_cfg, mpz::Prng& prng,
                                   const std::set<std::uint32_t>& dealers) {
  const group::GroupParams& params = old_material.params();
  const ServiceConfig& old_cfg = old_material.config();

  std::set<std::uint32_t> who = dealers;
  if (who.empty()) {
    for (std::uint32_t d = 1; d <= old_cfg.quorum(); ++d) who.insert(d);
  }
  if (who.size() < old_cfg.quorum())
    throw std::invalid_argument("reshare_service: dealer quorum below old threshold");

  std::vector<std::uint32_t> ranks(who.begin(), who.end());
  std::vector<ReshareDeal> deals;
  deals.reserve(ranks.size());
  for (std::uint32_t d : ranks) {
    deals.push_back(
        reshare_deal(params, old_material.share_of(d), new_cfg.n, new_cfg.f, prng));
  }

  std::vector<FeldmanCommitments> deal_commits;
  deal_commits.reserve(deals.size());
  for (const ReshareDeal& d : deals) {
    if (!reshare_verify_commitments(params, old_material.commitments(), d, new_cfg.f))
      throw std::runtime_error("reshare_service: deal commitment verification failed");
    for (const Share& sub : d.subshares) {
      if (!reshare_verify_subshare(params, d.commitments, sub))
        throw std::runtime_error("reshare_service: sub-share verification failed");
    }
    deal_commits.push_back(d.commitments);
  }

  std::vector<Share> new_shares;
  new_shares.reserve(new_cfg.n);
  std::vector<Bigint> subs(deals.size());
  for (std::uint32_t j = 1; j <= new_cfg.n; ++j) {
    for (std::size_t k = 0; k < deals.size(); ++k) subs[k] = deals[k].subshares[j - 1].value;
    new_shares.push_back(reshare_apply(params, ranks, subs, j));
  }
  FeldmanCommitments new_commitments = reshare_commitments(params, ranks, deal_commits);

  return ServiceKeyMaterial(params, new_cfg, old_material.public_key(),
                            std::move(new_commitments), std::move(new_shares));
}

}  // namespace dblind::threshold
