// Shamir re-sharing of a threshold key onto a DIFFERENT roster/threshold.
//
// Proactive refresh (refresh.hpp) re-randomizes shares over a FIXED (n, f)
// roster. Reconfiguration (ROADMAP "dynamic membership") needs more: install
// a new server set and/or threshold (n', f') while keeping the service key —
// and therefore the service public key clients hold — unchanged.
//
// Mechanism (Desmedt-Jajodia style re-sharing): each old server i in a
// quorum Q (|Q| = f+1) deals a fresh degree-f' polynomial Q_i with
// Q_i(0) = s_i (its OLD share), publishing Feldman commitments D_i. The
// commitment D_i[0] = g^{s_i} is publicly checkable against the old joint
// commitments, so a dealer cannot re-share a wrong value. New server j's
// share is the Lagrange combination at the OLD indices:
//
//     s'_j = Σ_{i ∈ Q} λ_i · Q_i(j)      (λ_i w.r.t. the index set Q at 0)
//
// which interpolates to Σ λ_i Q_i(0) = Σ λ_i s_i = s at j = 0 — the same
// key, now shared with threshold f'+1 among n' servers. The new joint
// commitments are C'_k = Π_i D_i[k]^{λ_i}, so C'_0 = g^s: the public key is
// untouched.
//
// SECRECY: unlike zero-sharing refresh deals, re-sharing sub-shares are NOT
// harmless — any f'+1 sub-shares of one dealer reveal that dealer's old
// share, and a full deal set reveals the key. Sub-shares must therefore
// travel point-to-point to their recipient only (core/reconfig enforces
// this); the commitments alone are public.
#pragma once

#include <set>
#include <vector>

#include "threshold/feldman.hpp"
#include "threshold/keygen.hpp"
#include "threshold/shamir.hpp"

namespace dblind::threshold {

// One old server's re-sharing contribution. `commitments` is public;
// `subshares[j-1]` (the value Q_i(j) for new server j) is secret and must
// only ever reach new server j.
struct ReshareDeal {
  std::uint32_t dealer = 0;        // OLD rank of the dealing server
  FeldmanCommitments commitments;  // D_i; degree = new_f, D_i[0] = g^{s_i}
  std::vector<Share> subshares;    // subshares[j-1] = {j, Q_i(j)}, j = 1..new_n
};

// Deals a re-sharing of `old_share` onto a (new_n, new_f) roster.
[[nodiscard]] ReshareDeal reshare_deal(const group::GroupParams& params, const Share& old_share,
                                       std::size_t new_n, std::size_t new_f, mpz::Prng& prng);

// Public check of a deal's commitments: correct degree for new_f, and
// constant term equal to the dealer's old verification key
// g^{s_i} = feldman_eval(old_commitments, dealer). Anyone can run this; it
// never needs the sub-shares.
[[nodiscard]] bool reshare_verify_commitments(const group::GroupParams& params,
                                              const FeldmanCommitments& old_commitments,
                                              const ReshareDeal& deal, std::size_t new_f);

// Recipient-side check of one sub-share against the dealer's (already
// commitment-verified) deal: g^{sub} == feldman_eval(D_i, recipient).
[[nodiscard]] bool reshare_verify_subshare(const group::GroupParams& params,
                                           const FeldmanCommitments& deal_commitments,
                                           const Share& subshare);

// New share of new-roster server `recipient` from a dealer quorum's
// sub-shares. `dealers[k]` is the OLD rank that dealt `subs[k]` (each subs[k]
// must be that dealer's Q_i(recipient)); dealer ranks must be distinct.
[[nodiscard]] Share reshare_apply(const group::GroupParams& params,
                                  std::span<const std::uint32_t> dealers,
                                  std::span<const Bigint> subs, std::uint32_t recipient);

// New joint commitments from the quorum's deal commitments:
// C'_k = Π_i D_i[k]^{λ_i}. C'_0 equals the old C_0 (the public key base).
[[nodiscard]] FeldmanCommitments reshare_commitments(const group::GroupParams& params,
                                                     std::span<const std::uint32_t> dealers,
                                                     std::span<const FeldmanCommitments> deals);

// Convenience (tests / trusted setup): full re-share of `old_material` onto
// a (new_n, new_f) roster using dealer quorum `dealers` (defaults to old
// ranks 1..f+1). Verifies everything; throws on any failure. The returned
// material has the SAME public key as the input.
[[nodiscard]] ServiceKeyMaterial reshare_service(const ServiceKeyMaterial& old_material,
                                                 const ServiceConfig& new_cfg, mpz::Prng& prng,
                                                 const std::set<std::uint32_t>& dealers = {});

}  // namespace dblind::threshold
