#include "threshold/pedersen_vss.hpp"

#include <set>
#include <stdexcept>

#include "mpz/modmath.hpp"

namespace dblind::threshold {

PedersenDeal pedersen_share(const zkp::PedersenParams& pp, const Bigint& secret, std::size_t n,
                            std::size_t f, mpz::Prng& prng) {
  if (n == 0 || f + 1 > n) throw std::invalid_argument("pedersen_share: need f + 1 <= n");
  const group::GroupParams& gp = pp.group();
  std::vector<Bigint> value_poly = sharing_polynomial(secret, f, gp.q(), prng);
  std::vector<Bigint> blind_poly =
      sharing_polynomial(gp.random_exponent(prng), f, gp.q(), prng);

  PedersenDeal deal;
  deal.commitments.reserve(f + 1);
  for (std::size_t j = 0; j <= f; ++j)
    deal.commitments.push_back(pp.commit(value_poly[j], blind_poly[j]));
  deal.shares.reserve(n);
  for (std::uint32_t i = 1; i <= n; ++i) {
    deal.shares.push_back({i, eval_polynomial(value_poly, i, gp.q()),
                           eval_polynomial(blind_poly, i, gp.q())});
  }
  return deal;
}

bool pedersen_verify(const zkp::PedersenParams& pp, std::span<const Bigint> commitments,
                     const PedersenShare& share) {
  if (share.index == 0 || commitments.empty()) return false;
  const group::GroupParams& gp = pp.group();
  if (share.value.is_negative() || share.value >= gp.q()) return false;
  if (share.blinding.is_negative() || share.blinding >= gp.q()) return false;
  // Π E_j^{i^j} computed Horner-style in the exponent.
  Bigint acc = commitments.back();
  Bigint iv(static_cast<std::uint64_t>(share.index));
  for (std::size_t j = commitments.size() - 1; j-- > 0;) {
    acc = gp.mul(gp.pow(acc, iv), commitments[j]);
  }
  return pp.commit(share.value, share.blinding) == acc;
}

Bigint pedersen_reconstruct(const zkp::PedersenParams& pp,
                            std::span<const PedersenShare> shares) {
  if (shares.empty()) throw std::invalid_argument("pedersen_reconstruct: no shares");
  const Bigint& q = pp.group().q();
  std::vector<std::uint32_t> indices;
  std::set<std::uint32_t> seen;
  for (const PedersenShare& s : shares) {
    if (!seen.insert(s.index).second)
      throw std::invalid_argument("pedersen_reconstruct: duplicate index");
    indices.push_back(s.index);
  }
  Bigint acc(0);
  for (const PedersenShare& s : shares) {
    Bigint lambda = lagrange_at_zero(indices, s.index, q);
    acc = mpz::addmod(acc, mpz::mulmod(lambda, s.value, q), q);
  }
  return acc;
}

}  // namespace dblind::threshold
