#include "threshold/refresh.hpp"

#include <stdexcept>

#include "mpz/modmath.hpp"

namespace dblind::threshold {

RefreshDeal refresh_deal(const group::GroupParams& params, std::uint32_t dealer, std::size_t n,
                         std::size_t f, mpz::Prng& prng) {
  if (dealer == 0 || dealer > n) throw std::invalid_argument("refresh_deal: bad dealer");
  RefreshDeal deal;
  deal.dealer = dealer;
  std::vector<Bigint> poly = sharing_polynomial(Bigint(0), f, params.q(), prng);
  deal.commitments = feldman_commit(params, poly);
  deal.subshares.reserve(n);
  for (std::uint32_t j = 1; j <= n; ++j)
    deal.subshares.push_back({j, eval_polynomial(poly, j, params.q())});
  return deal;
}

bool refresh_verify(const group::GroupParams& params, const RefreshDeal& deal,
                    std::uint32_t recipient) {
  if (recipient == 0 || recipient > deal.subshares.size()) return false;
  if (deal.commitments.coefficients.empty()) return false;
  // Must be a sharing of ZERO: constant-term commitment is the identity.
  if (!params.is_identity(deal.commitments.coefficients[0])) return false;
  return feldman_verify(params, deal.commitments, deal.subshares[recipient - 1]);
}

Share refresh_apply(const group::GroupParams& params, const Share& old_share,
                    std::span<const RefreshDeal> deals) {
  Bigint acc = old_share.value;
  for (const RefreshDeal& d : deals) {
    if (old_share.index == 0 || old_share.index > d.subshares.size())
      throw std::invalid_argument("refresh_apply: deal does not cover this server");
    acc = mpz::addmod(acc, d.subshares[old_share.index - 1].value, params.q());
  }
  return {old_share.index, std::move(acc)};
}

FeldmanCommitments refresh_commitments(const group::GroupParams& params,
                                       const FeldmanCommitments& old_commitments,
                                       std::span<const RefreshDeal> deals) {
  FeldmanCommitments out = old_commitments;
  for (const RefreshDeal& d : deals) {
    if (d.commitments.coefficients.size() != out.coefficients.size())
      throw std::invalid_argument("refresh_commitments: degree mismatch");
    for (std::size_t k = 0; k < out.coefficients.size(); ++k) {
      out.coefficients[k] = params.mul(out.coefficients[k], d.commitments.coefficients[k]);
    }
  }
  return out;
}

ServiceKeyMaterial refresh_service(const ServiceKeyMaterial& old_material, mpz::Prng& prng,
                                   const std::set<std::uint32_t>& dealers) {
  const group::GroupParams& params = old_material.params();
  const ServiceConfig& cfg = old_material.config();

  std::set<std::uint32_t> who = dealers;
  if (who.empty()) {
    for (std::uint32_t d = 1; d <= cfg.n; ++d) who.insert(d);
  }
  std::vector<RefreshDeal> deals;
  deals.reserve(who.size());
  for (std::uint32_t d : who) deals.push_back(refresh_deal(params, d, cfg.n, cfg.f, prng));

  for (const RefreshDeal& d : deals) {
    for (std::uint32_t j = 1; j <= cfg.n; ++j) {
      if (!refresh_verify(params, d, j))
        throw std::runtime_error("refresh_service: deal verification failed");
    }
  }

  std::vector<Share> new_shares;
  new_shares.reserve(cfg.n);
  for (std::uint32_t j = 1; j <= cfg.n; ++j)
    new_shares.push_back(refresh_apply(params, old_material.share_of(j), deals));
  FeldmanCommitments new_commitments =
      refresh_commitments(params, old_material.commitments(), deals);

  return ServiceKeyMaterial(params, cfg, old_material.public_key(), std::move(new_commitments),
                            std::move(new_shares));
}

}  // namespace dblind::threshold
