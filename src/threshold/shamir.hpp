// Shamir secret sharing over Z_q.
//
// An (n, f) service (paper §2) shares its private key with a degree-f
// polynomial: any f+1 shares reconstruct, any f shares reveal nothing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpz/bigint.hpp"
#include "mpz/random.hpp"

namespace dblind::threshold {

using mpz::Bigint;

struct Share {
  std::uint32_t index;  // evaluation point, >= 1
  Bigint value;         // f(index) mod q

  friend bool operator==(const Share&, const Share&) = default;
};

// Random polynomial f of degree `degree` with f(0) = secret; returns
// coefficients [a_0 = secret, a_1, ..., a_degree].
[[nodiscard]] std::vector<Bigint> sharing_polynomial(const Bigint& secret, std::size_t degree,
                                                     const Bigint& q, mpz::Prng& prng);

// Evaluates the polynomial at x (Horner), mod q.
[[nodiscard]] Bigint eval_polynomial(std::span<const Bigint> coeffs, std::uint32_t x,
                                     const Bigint& q);

// Shares `secret` among indices 1..n with threshold f+1 (degree f).
// Precondition: 0 < f + 1 <= n, secret in [0, q).
[[nodiscard]] std::vector<Share> shamir_share(const Bigint& secret, std::size_t n, std::size_t f,
                                              const Bigint& q, mpz::Prng& prng);

// Lagrange coefficient λ_i for interpolating at x = 0 from the given index
// set. Precondition: indices distinct, nonzero, and contain `i`.
[[nodiscard]] Bigint lagrange_at_zero(std::span<const std::uint32_t> indices, std::uint32_t i,
                                      const Bigint& q);

// Reconstructs the secret from >= f+1 distinct shares. The caller is
// responsible for share validity (use Feldman verification for that);
// reconstruction itself interpolates whatever it is given.
[[nodiscard]] Bigint shamir_reconstruct(std::span<const Share> shares, const Bigint& q);

}  // namespace dblind::threshold
