// Proactive refresh of a threshold key's shares (Herzberg et al., Crypto'95
// style), cited by the paper's §5: against a mobile adversary, share sets
// must be refreshed periodically, and "refreshing the service's private key
// shares does not change the service public key" — which is why clients only
// ever need the (stable) service public key.
//
// Mechanism: each participant in a refresh quorum deals a Feldman-committed
// sharing of ZERO; every server adds the sub-shares it received to its old
// share. The secret (sum of constant terms = 0 added) is unchanged, but any
// f-subset of old shares combined with any f-subset of new shares reveals
// nothing — the polynomials are independent.
#pragma once

#include <set>
#include <vector>

#include "threshold/feldman.hpp"
#include "threshold/keygen.hpp"
#include "threshold/shamir.hpp"

namespace dblind::threshold {

// One participant's refresh contribution: a sharing of zero.
struct RefreshDeal {
  std::uint32_t dealer = 0;
  FeldmanCommitments commitments;   // C_0 must equal g^0 = 1
  std::vector<Share> subshares;     // subshares[j-1] for server j
};

// Deals a zero-sharing for an (n, f) service from server `dealer`.
[[nodiscard]] RefreshDeal refresh_deal(const group::GroupParams& params, std::uint32_t dealer,
                                       std::size_t n, std::size_t f, mpz::Prng& prng);

// Checks the sub-share for `recipient`: Feldman-valid AND constant term 1
// (i.e. provably a sharing of zero — a non-zero constant term would shift
// the service key).
[[nodiscard]] bool refresh_verify(const group::GroupParams& params, const RefreshDeal& deal,
                                  std::uint32_t recipient);

// New share of server `recipient`: old share plus all qualified deals'
// sub-shares. Every deal must cover `recipient`.
[[nodiscard]] Share refresh_apply(const group::GroupParams& params, const Share& old_share,
                                  std::span<const RefreshDeal> deals);

// Updated joint Feldman commitments after applying `deals`:
// C'_k = C_k · Π_i C_{i,k}.
[[nodiscard]] FeldmanCommitments refresh_commitments(const group::GroupParams& params,
                                                     const FeldmanCommitments& old_commitments,
                                                     std::span<const RefreshDeal> deals);

// Convenience: full refresh of a ServiceKeyMaterial (all servers refreshed in
// lock-step, `dealers` contributing; defaults to all n). Public key is
// untouched. Throws on any verification failure.
[[nodiscard]] ServiceKeyMaterial refresh_service(const ServiceKeyMaterial& old_material,
                                                 mpz::Prng& prng,
                                                 const std::set<std::uint32_t>& dealers = {});

}  // namespace dblind::threshold
