// Threshold Schnorr service signatures.
//
// The paper assumes a threshold signature protocol as a substrate ("invokes
// at service B threshold signature protocol...", Fig. 4 steps 5(c)/6(d))
// without fixing a scheme. We implement a quorum-based threshold Schnorr:
//
//   1. commit: each quorum member i samples a nonce k_i and publishes a hash
//      commitment to t_i = g^{k_i} (commit-then-reveal prevents a Byzantine
//      member from biasing the joint nonce),
//   2. reveal: members reveal t_i; everyone computes R = Π t_i^{λ_i},
//   3. respond: members send partial signatures s_i = k_i + e·x_i with
//      e = H(R, K_S, msg); partials are individually verifiable against the
//      member verification keys (g^{s_i} == t_i · h_i^e — identifiable
//      abort), and any full quorum of valid partials combines by Lagrange
//      into a standard Schnorr signature (R, s) under the service key.
//
// The combined signature verifies with the plain zkp::SchnorrVerifyKey, so
// relying parties need only the service public key — exactly the property
// the paper's architecture needs (§5, "Refresh is transparent outside the
// service").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "hash/sha256.hpp"
#include "threshold/keygen.hpp"
#include "zkp/schnorr.hpp"

namespace dblind::threshold {

struct NonceCommitment {
  std::uint32_t index;
  hash::Digest digest;  // H(index, t_i)

  friend bool operator==(const NonceCommitment&, const NonceCommitment&) = default;
};

struct NonceReveal {
  std::uint32_t index;
  Bigint t;  // g^{k_i}

  friend bool operator==(const NonceReveal&, const NonceReveal&) = default;
};

struct PartialSignature {
  std::uint32_t index;
  Bigint s;  // k_i + e * x_i mod q

  friend bool operator==(const PartialSignature&, const PartialSignature&) = default;
};

// Per-member state for one signing session. Create one per (member, session);
// never reuse across messages — nonce reuse leaks the key share.
class SigningMember {
 public:
  // `share` is this member's key share x_i.
  SigningMember(const group::GroupParams& params, Share share, mpz::Prng& prng);

  [[nodiscard]] std::uint32_t index() const { return share_.index; }
  [[nodiscard]] const NonceCommitment& commitment() const { return commitment_; }
  [[nodiscard]] const NonceReveal& reveal() const { return reveal_; }

  // Computes this member's partial signature once the quorum's reveals are
  // known. `quorum` lists the indices participating (must include this
  // member); `service_y` is the service public key point. Verifies each
  // reveal against its commitment; returns nullopt (refuses to sign) on any
  // mismatch, preventing a nonce-biasing adversary from obtaining partials.
  [[nodiscard]] std::optional<PartialSignature> respond(
      std::span<const NonceCommitment> commitments, std::span<const NonceReveal> reveals,
      const Bigint& service_y, std::span<const std::uint8_t> msg);

 private:
  group::GroupParams params_;
  Share share_;
  Bigint nonce_;  // k_i
  NonceReveal reveal_;
  NonceCommitment commitment_;
  bool used_ = false;
};

// Hash commitment for a reveal (exposed for verification by coordinators).
[[nodiscard]] hash::Digest nonce_commitment_digest(const group::GroupParams& params,
                                                   const NonceReveal& reveal);

// R = Π t_i^{λ_i} over the quorum of reveals (distinct indices required).
[[nodiscard]] Bigint combine_nonce(const group::GroupParams& params,
                                   std::span<const NonceReveal> reveals);

// Checks one partial signature: g^{s_i} == t_i · h_i^{e·λ_i}... (see .cpp;
// the λ factor is applied at combination time, so the per-partial check is
// g^{s_i} == t_i · h_i^e with h_i from the Feldman commitments).
[[nodiscard]] bool verify_partial_signature(const group::GroupParams& params,
                                            const FeldmanCommitments& commitments,
                                            const NonceReveal& reveal,
                                            const PartialSignature& partial, const Bigint& e);

// Combines a full quorum of verified partials into (R, s). Throws
// std::invalid_argument on index mismatch between reveals and partials.
[[nodiscard]] zkp::SchnorrSignature combine_signature(const group::GroupParams& params,
                                                      std::span<const NonceReveal> reveals,
                                                      std::span<const PartialSignature> partials);

}  // namespace dblind::threshold
