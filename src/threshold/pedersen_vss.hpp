// Pedersen verifiable secret sharing (information-theoretically hiding VSS).
//
// Feldman VSS publishes g^{a_j}: verifiers learn the sharing polynomial "in
// the exponent" — in particular g^{secret}. That is fine for key shares
// (g^k IS the public key), but not for sharing arbitrary secrets. Pedersen
// VSS commits to each coefficient with a Pedersen commitment
// E_j = g^{a_j} · h^{b_j} instead: the published values reveal nothing about
// the secret, and each participant receives a share PAIR (s_i, t_i) =
// (f(i), f'(i)) checkable against g^{s_i} h^{t_i} == Π E_j^{i^j}.
//
// Included as the library's hardening extension for sharing application
// secrets (the paper's PSS-based alternative of §5 needs exactly this when
// the stored values must stay information-theoretically hidden).
#pragma once

#include <span>
#include <vector>

#include "threshold/shamir.hpp"
#include "zkp/pedersen.hpp"

namespace dblind::threshold {

struct PedersenShare {
  std::uint32_t index = 0;
  Bigint value;     // f(index)
  Bigint blinding;  // f'(index)

  friend bool operator==(const PedersenShare&, const PedersenShare&) = default;
};

struct PedersenDeal {
  std::vector<Bigint> commitments;       // E_j = g^{a_j} h^{b_j}
  std::vector<PedersenShare> shares;     // shares[i-1] for participant i
};

// Shares `secret` among 1..n with threshold f+1 under `pp`.
[[nodiscard]] PedersenDeal pedersen_share(const zkp::PedersenParams& pp, const Bigint& secret,
                                          std::size_t n, std::size_t f, mpz::Prng& prng);

// Verifies one share pair against the public commitments.
[[nodiscard]] bool pedersen_verify(const zkp::PedersenParams& pp,
                                   std::span<const Bigint> commitments,
                                   const PedersenShare& share);

// Reconstructs the secret from >= f+1 distinct share pairs (values only —
// blinding shares are needed only for verification).
[[nodiscard]] Bigint pedersen_reconstruct(const zkp::PedersenParams& pp,
                                          std::span<const PedersenShare> shares);

}  // namespace dblind::threshold
