#include "threshold/thresh_sign.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "mpz/modmath.hpp"
#include "zkp/transcript.hpp"

namespace dblind::threshold {

hash::Digest nonce_commitment_digest(const group::GroupParams& params, const NonceReveal& reveal) {
  zkp::Transcript t("dblind/thresh-sign/nonce-commit/v1");
  t.absorb(Bigint(static_cast<std::uint64_t>(reveal.index)));
  t.absorb(params.p());
  t.absorb(reveal.t);
  return t.digest();
}

SigningMember::SigningMember(const group::GroupParams& params, Share share, mpz::Prng& prng)
    : params_(params), share_(std::move(share)), nonce_(params.random_exponent(prng)) {
  reveal_ = {share_.index, params_.pow_g(nonce_)};
  commitment_ = {share_.index, nonce_commitment_digest(params_, reveal_)};
}

std::optional<PartialSignature> SigningMember::respond(
    std::span<const NonceCommitment> commitments, std::span<const NonceReveal> reveals,
    const Bigint& service_y, std::span<const std::uint8_t> msg) {
  if (used_) return std::nullopt;  // nonce reuse would leak the key share
  if (reveals.size() != commitments.size() || reveals.empty()) return std::nullopt;

  bool self_included = false;
  std::set<std::uint32_t> seen;
  for (std::size_t i = 0; i < reveals.size(); ++i) {
    const NonceReveal& r = reveals[i];
    if (!seen.insert(r.index).second) return std::nullopt;
    if (!params_.in_group(r.t)) return std::nullopt;
    // Every reveal must match its prior commitment — otherwise a Byzantine
    // member chose its nonce after seeing ours, biasing R.
    auto c = std::find_if(commitments.begin(), commitments.end(),
                          [&](const NonceCommitment& nc) { return nc.index == r.index; });
    if (c == commitments.end()) return std::nullopt;
    if (c->digest != nonce_commitment_digest(params_, r)) return std::nullopt;
    if (r.index == share_.index) {
      if (r.t != reveal_.t) return std::nullopt;
      self_included = true;
    }
  }
  if (!self_included) return std::nullopt;

  used_ = true;
  Bigint r_joint = combine_nonce(params_, reveals);
  Bigint e = zkp::schnorr_challenge(params_, r_joint, service_y, msg);

  // s_i = λ_i·k_i + e·λ_i·x_i would also work; we instead put λ into the
  // combination step and send s_i = k_i + e·x_i, which keeps the per-partial
  // verification equation independent of the quorum.
  Bigint s = mpz::addmod(nonce_, mpz::mulmod(e, share_.value, params_.q()), params_.q());
  return PartialSignature{share_.index, std::move(s)};
}

Bigint combine_nonce(const group::GroupParams& params, std::span<const NonceReveal> reveals) {
  if (reveals.empty()) throw std::invalid_argument("combine_nonce: no reveals");
  std::vector<std::uint32_t> indices;
  std::set<std::uint32_t> seen;
  for (const NonceReveal& r : reveals) {
    if (!seen.insert(r.index).second)
      throw std::invalid_argument("combine_nonce: duplicate index");
    indices.push_back(r.index);
  }
  Bigint r_joint = params.identity();
  for (const NonceReveal& r : reveals) {
    Bigint lambda = lagrange_at_zero(indices, r.index, params.q());
    r_joint = params.mul(r_joint, params.pow(r.t, lambda));
  }
  return r_joint;
}

bool verify_partial_signature(const group::GroupParams& params,
                              const FeldmanCommitments& commitments, const NonceReveal& reveal,
                              const PartialSignature& partial, const Bigint& e) {
  if (partial.index != reveal.index) return false;
  if (partial.s.is_negative() || partial.s >= params.q()) return false;
  if (!params.in_group(reveal.t)) return false;
  Bigint h_i = feldman_eval(params, commitments, partial.index);
  // g^{s_i} == t_i · h_i^e
  return params.pow_g(partial.s) == params.mul(reveal.t, params.pow(h_i, e));
}

zkp::SchnorrSignature combine_signature(const group::GroupParams& params,
                                        std::span<const NonceReveal> reveals,
                                        std::span<const PartialSignature> partials) {
  if (partials.empty() || partials.size() != reveals.size())
    throw std::invalid_argument("combine_signature: partials/reveals mismatch");
  std::vector<std::uint32_t> indices;
  std::set<std::uint32_t> seen;
  for (const PartialSignature& p : partials) {
    if (!seen.insert(p.index).second)
      throw std::invalid_argument("combine_signature: duplicate index");
    indices.push_back(p.index);
  }
  for (const NonceReveal& r : reveals) {
    if (!seen.contains(r.index))
      throw std::invalid_argument("combine_signature: reveal without matching partial");
  }
  Bigint r_joint = combine_nonce(params, reveals);
  Bigint s(0);
  for (const PartialSignature& p : partials) {
    Bigint lambda = lagrange_at_zero(indices, p.index, params.q());
    s = mpz::addmod(s, mpz::mulmod(lambda, p.s, params.q()), params.q());
  }
  return {std::move(r_joint), std::move(s)};
}

}  // namespace dblind::threshold
