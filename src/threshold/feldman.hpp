// Feldman verifiable secret sharing.
//
// The dealer publishes commitments C_j = g^{a_j} to the coefficients of the
// sharing polynomial; anyone can then check a share s_i against
// g^{s_i} == Π_j C_j^{i^j}. This is how servers verify key shares from the
// dealer / DKG and how threshold-decryption share proofs obtain the per-
// server verification keys h_i = g^{k_i}.
#pragma once

#include <span>
#include <vector>

#include "group/params.hpp"
#include "threshold/shamir.hpp"

namespace dblind::threshold {

struct FeldmanCommitments {
  // commitments_[j] = g^{a_j}; degree = size - 1.
  std::vector<Bigint> coefficients;

  friend bool operator==(const FeldmanCommitments&, const FeldmanCommitments&) = default;
};

// Commitments for an existing sharing polynomial.
[[nodiscard]] FeldmanCommitments feldman_commit(const group::GroupParams& params,
                                                std::span<const Bigint> poly_coeffs);

// g^{f(index)} computed from the public commitments — the verification key of
// the share at `index` (index 0 yields g^{secret}, the public key).
[[nodiscard]] Bigint feldman_eval(const group::GroupParams& params, const FeldmanCommitments& c,
                                  std::uint32_t index);

// Checks g^{share.value} == feldman_eval(share.index).
[[nodiscard]] bool feldman_verify(const group::GroupParams& params, const FeldmanCommitments& c,
                                  const Share& share);

}  // namespace dblind::threshold
