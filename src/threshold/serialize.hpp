// Byte encodings for threshold-cryptography artifacts.
//
// Share blobs contain PRIVATE key material — store them accordingly.
// Feldman commitments are public.
#pragma once

#include <vector>

#include "common/codec.hpp"
#include "threshold/feldman.hpp"
#include "threshold/shamir.hpp"

namespace dblind::threshold {

[[nodiscard]] std::vector<std::uint8_t> share_to_bytes(const Share& s);
[[nodiscard]] Share share_from_bytes(std::span<const std::uint8_t> bytes);

[[nodiscard]] std::vector<std::uint8_t> commitments_to_bytes(const FeldmanCommitments& c);
[[nodiscard]] FeldmanCommitments commitments_from_bytes(std::span<const std::uint8_t> bytes);

}  // namespace dblind::threshold
