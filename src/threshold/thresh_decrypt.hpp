// Threshold ElGamal decryption with verifiable decryption shares.
//
// Server i computes d_i = a^{x_i} and proves correctness with a Chaum-
// Pedersen DLOG-equality proof against its public verification key
// h_i = g^{x_i}. Any f+1 verified shares combine by Lagrange interpolation
// in the exponent: m = b / Π d_i^{λ_i}. This is the "threshold decryption"
// building block invoked in step 6(b) of the paper's Figure 4, and the
// evidence V^id_{mρ} that the decryption result is correct is exactly the
// set of per-share proofs.
#pragma once

#include <span>
#include <string_view>

#include "threshold/keygen.hpp"
#include "zkp/batch.hpp"
#include "zkp/chaum_pedersen.hpp"

namespace dblind::threshold {

struct DecryptionShare {
  std::uint32_t index;
  Bigint d;  // a^{x_i}
  zkp::DlogEqProof proof;

  friend bool operator==(const DecryptionShare&, const DecryptionShare&) = default;
};

// Produces server `share.index`'s decryption share for ciphertext `c`.
[[nodiscard]] DecryptionShare make_decryption_share(const group::GroupParams& params,
                                                    const elgamal::Ciphertext& c,
                                                    const Share& share, std::string_view context,
                                                    mpz::Prng& prng);

// Verifies a share against the service's Feldman commitments.
[[nodiscard]] bool verify_decryption_share(const group::GroupParams& params,
                                           const FeldmanCommitments& commitments,
                                           const elgamal::Ciphertext& c,
                                           const DecryptionShare& ds, std::string_view context);

// Batch-verifies all shares of one decryption round (same ciphertext and
// context) with a single random-linear-combination multi-exponentiation.
// Accepts iff every share would pass verify_decryption_share, up to the
// 2^-zkp::kBatchRandomizerBits soundness error.
[[nodiscard]] bool batch_verify_decryption_shares(const group::GroupParams& params,
                                                  const FeldmanCommitments& commitments,
                                                  const elgamal::Ciphertext& c,
                                                  std::span<const DecryptionShare> shares,
                                                  std::string_view context, mpz::Prng& prng);

// Batch check first; on failure names the failing share indices (positions in
// `shares`, not server indices) via individual verification.
[[nodiscard]] zkp::BatchResult batch_verify_decryption_shares_isolate(
    const group::GroupParams& params, const FeldmanCommitments& commitments,
    const elgamal::Ciphertext& c, std::span<const DecryptionShare> shares,
    std::string_view context, mpz::Prng& prng);

// Lowers one share check to its Chaum-Pedersen equation for cross-instance
// aggregation via zkp::CpCrossBatch (the same equation the batch verifier
// folds). Returns false (appending nothing) for the structurally invalid
// ds.index == 0, which verify_decryption_share rejects unconditionally.
[[nodiscard]] bool share_lower_to_cp(const group::GroupParams& params,
                                     const FeldmanCommitments& commitments,
                                     const elgamal::Ciphertext& c, const DecryptionShare& ds,
                                     std::string_view context,
                                     std::vector<zkp::CpBatchItem>& out);

// Combines >= f+1 distinct shares into the plaintext. The caller must have
// verified the shares; combination throws std::invalid_argument on duplicate
// indices or an empty span.
[[nodiscard]] Bigint combine_decryption(const group::GroupParams& params,
                                        const elgamal::Ciphertext& c,
                                        std::span<const DecryptionShare> shares);

}  // namespace dblind::threshold
