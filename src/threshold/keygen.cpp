#include "threshold/keygen.hpp"

#include <stdexcept>

#include "mpz/modmath.hpp"

namespace dblind::threshold {

ServiceKeyMaterial::ServiceKeyMaterial(group::GroupParams params, ServiceConfig cfg,
                                       elgamal::PublicKey pub, FeldmanCommitments commitments,
                                       std::vector<Share> shares)
    : params_(std::move(params)),
      cfg_(cfg),
      pub_(std::move(pub)),
      commitments_(std::move(commitments)),
      shares_(std::move(shares)) {
  if (shares_.size() != cfg_.n)
    throw std::invalid_argument("ServiceKeyMaterial: share count != n");
  for (std::size_t i = 0; i < shares_.size(); ++i) {
    if (shares_[i].index != i + 1)
      throw std::invalid_argument("ServiceKeyMaterial: shares must be indexed 1..n in order");
    if (!feldman_verify(params_, commitments_, shares_[i]))
      throw std::invalid_argument("ServiceKeyMaterial: share fails Feldman verification");
  }
  if (feldman_eval(params_, commitments_, 0) != pub_.y())
    throw std::invalid_argument("ServiceKeyMaterial: commitments inconsistent with public key");
}

ServiceKeyMaterial ServiceKeyMaterial::dealer_keygen(const group::GroupParams& params,
                                                     const ServiceConfig& cfg, mpz::Prng& prng) {
  if (cfg.n == 0 || cfg.f + 1 > cfg.n)
    throw std::invalid_argument("dealer_keygen: need f + 1 <= n");
  Bigint secret = params.random_exponent(prng);
  std::vector<Bigint> poly = sharing_polynomial(secret, cfg.f, params.q(), prng);
  FeldmanCommitments commitments = feldman_commit(params, poly);
  std::vector<Share> shares;
  shares.reserve(cfg.n);
  for (std::uint32_t i = 1; i <= cfg.n; ++i)
    shares.push_back({i, eval_polynomial(poly, i, params.q())});
  elgamal::PublicKey pub(params, params.pow_g(secret));
  return ServiceKeyMaterial(params, cfg, std::move(pub), std::move(commitments),
                            std::move(shares));
}

const Share& ServiceKeyMaterial::share_of(std::uint32_t index) const {
  if (index == 0 || index > shares_.size())
    throw std::out_of_range("ServiceKeyMaterial::share_of: bad index");
  return shares_[index - 1];
}

Bigint ServiceKeyMaterial::verification_key_of(std::uint32_t index) const {
  if (index == 0 || index > shares_.size())
    throw std::out_of_range("ServiceKeyMaterial::verification_key_of: bad index");
  return feldman_eval(params_, commitments_, index);
}

DkgResult run_joint_feldman_dkg(const group::GroupParams& params, const ServiceConfig& cfg,
                                mpz::Prng& prng, const std::set<std::uint32_t>& cheaters) {
  if (cfg.n == 0 || cfg.f + 1 > cfg.n)
    throw std::invalid_argument("run_joint_feldman_dkg: need f + 1 <= n");

  struct Dealer {
    std::vector<Bigint> poly;
    FeldmanCommitments commitments;
    std::vector<Share> subshares;  // subshares[i-1] sent to participant i
  };

  // Phase 1: every participant deals a random secret.
  std::vector<Dealer> dealers(cfg.n);
  for (std::uint32_t d = 1; d <= cfg.n; ++d) {
    Dealer& dealer = dealers[d - 1];
    Bigint secret = params.random_exponent(prng);
    dealer.poly = sharing_polynomial(secret, cfg.f, params.q(), prng);
    dealer.commitments = feldman_commit(params, dealer.poly);
    for (std::uint32_t i = 1; i <= cfg.n; ++i) {
      Bigint v = eval_polynomial(dealer.poly, i, params.q());
      if (cheaters.contains(d) && i != d) {
        // A cheating dealer corrupts the sub-shares it sends to others (its
        // own stays consistent, as a real attacker's would).
        v = mpz::addmod(v, Bigint(1), params.q());
      }
      dealer.subshares.push_back({i, v});
    }
  }

  // Phase 2: participants verify received sub-shares against the public
  // commitments and complain; with honest-majority quorums a single valid
  // complaint disqualifies the dealer (the complaint is publicly checkable
  // because shares are Feldman-verifiable).
  std::vector<std::uint32_t> disqualified;
  std::vector<std::uint32_t> qualified;
  for (std::uint32_t d = 1; d <= cfg.n; ++d) {
    bool ok = true;
    for (std::uint32_t i = 1; i <= cfg.n && ok; ++i) {
      ok = feldman_verify(params, dealers[d - 1].commitments, dealers[d - 1].subshares[i - 1]);
    }
    (ok ? qualified : disqualified).push_back(d);
  }
  if (qualified.size() < cfg.quorum())
    throw std::runtime_error("run_joint_feldman_dkg: too few qualified dealers");

  // Phase 3: final share of participant i is the sum over qualified dealers;
  // joint commitments are the componentwise products.
  std::vector<Share> shares;
  for (std::uint32_t i = 1; i <= cfg.n; ++i) {
    Bigint acc(0);
    for (std::uint32_t d : qualified)
      acc = mpz::addmod(acc, dealers[d - 1].subshares[i - 1].value, params.q());
    shares.push_back({i, acc});
  }
  FeldmanCommitments joint;
  joint.coefficients.assign(cfg.f + 1, params.identity());
  for (std::uint32_t d : qualified) {
    for (std::size_t j = 0; j <= cfg.f; ++j) {
      joint.coefficients[j] =
          params.mul(joint.coefficients[j], dealers[d - 1].commitments.coefficients[j]);
    }
  }

  elgamal::PublicKey pub(params, joint.coefficients[0]);
  ServiceKeyMaterial material(params, cfg, std::move(pub), std::move(joint), std::move(shares));
  return {std::move(material), std::move(disqualified)};
}

}  // namespace dblind::threshold
