#include "threshold/shamir.hpp"

#include <set>
#include <stdexcept>

#include "mpz/modmath.hpp"

namespace dblind::threshold {

std::vector<Bigint> sharing_polynomial(const Bigint& secret, std::size_t degree, const Bigint& q,
                                       mpz::Prng& prng) {
  if (secret.is_negative() || secret >= q)
    throw std::invalid_argument("sharing_polynomial: secret out of [0, q)");
  std::vector<Bigint> coeffs;
  coeffs.reserve(degree + 1);
  coeffs.push_back(secret);
  for (std::size_t i = 0; i < degree; ++i) coeffs.push_back(prng.uniform_below(q));
  return coeffs;
}

Bigint eval_polynomial(std::span<const Bigint> coeffs, std::uint32_t x, const Bigint& q) {
  if (coeffs.empty()) throw std::invalid_argument("eval_polynomial: no coefficients");
  Bigint acc(0);
  Bigint xv(static_cast<std::uint64_t>(x));
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = mpz::addmod(mpz::mulmod(acc, xv, q), coeffs[i], q);
  }
  return acc;
}

std::vector<Share> shamir_share(const Bigint& secret, std::size_t n, std::size_t f, const Bigint& q,
                                mpz::Prng& prng) {
  if (n == 0 || f + 1 > n) throw std::invalid_argument("shamir_share: need f + 1 <= n");
  std::vector<Bigint> coeffs = sharing_polynomial(secret, f, q, prng);
  std::vector<Share> shares;
  shares.reserve(n);
  for (std::uint32_t i = 1; i <= n; ++i) shares.push_back({i, eval_polynomial(coeffs, i, q)});
  return shares;
}

Bigint lagrange_at_zero(std::span<const std::uint32_t> indices, std::uint32_t i, const Bigint& q) {
  Bigint num(1), den(1);
  bool found = false;
  for (std::uint32_t j : indices) {
    if (j == 0) throw std::invalid_argument("lagrange_at_zero: zero index");
    if (j == i) {
      found = true;
      continue;
    }
    // λ_i = Π_{j != i} j / (j - i)
    num = mpz::mulmod(num, Bigint(static_cast<std::uint64_t>(j)), q);
    Bigint diff = mpz::submod(Bigint(static_cast<std::uint64_t>(j)),
                              Bigint(static_cast<std::uint64_t>(i)), q);
    den = mpz::mulmod(den, diff, q);
  }
  if (!found) throw std::invalid_argument("lagrange_at_zero: i not in index set");
  return mpz::mulmod(num, mpz::invmod(den, q), q);
}

Bigint shamir_reconstruct(std::span<const Share> shares, const Bigint& q) {
  if (shares.empty()) throw std::invalid_argument("shamir_reconstruct: no shares");
  std::vector<std::uint32_t> indices;
  std::set<std::uint32_t> seen;
  for (const Share& s : shares) {
    if (!seen.insert(s.index).second)
      throw std::invalid_argument("shamir_reconstruct: duplicate share index");
    indices.push_back(s.index);
  }
  Bigint acc(0);
  for (const Share& s : shares) {
    Bigint lambda = lagrange_at_zero(indices, s.index, q);
    acc = mpz::addmod(acc, mpz::mulmod(lambda, s.value, q), q);
  }
  return acc;
}

}  // namespace dblind::threshold
