#include "threshold/serialize.hpp"

namespace dblind::threshold {

namespace {

constexpr std::uint8_t kShareTag = 0x31;
constexpr std::uint8_t kCommitmentsTag = 0x32;

}  // namespace

std::vector<std::uint8_t> share_to_bytes(const Share& s) {
  common::Writer w;
  w.u8(kShareTag);
  w.u32(s.index);
  w.bigint(s.value);
  return w.take();
}

Share share_from_bytes(std::span<const std::uint8_t> bytes) {
  common::Reader r(bytes);
  if (r.u8() != kShareTag) throw common::CodecError("share: bad tag");
  Share s;
  s.index = r.u32();
  s.value = r.bigint();
  r.expect_done();
  if (s.index == 0) throw common::CodecError("share: zero index");
  return s;
}

std::vector<std::uint8_t> commitments_to_bytes(const FeldmanCommitments& c) {
  common::Writer w;
  w.u8(kCommitmentsTag);
  w.u32(static_cast<std::uint32_t>(c.coefficients.size()));
  for (const Bigint& v : c.coefficients) w.bigint(v);
  return w.take();
}

FeldmanCommitments commitments_from_bytes(std::span<const std::uint8_t> bytes) {
  common::Reader r(bytes);
  if (r.u8() != kCommitmentsTag) throw common::CodecError("commitments: bad tag");
  std::uint32_t n = r.count();
  FeldmanCommitments c;
  c.coefficients.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) c.coefficients.push_back(r.bigint());
  r.expect_done();
  if (c.coefficients.empty()) throw common::CodecError("commitments: empty");
  return c;
}

}  // namespace dblind::threshold
