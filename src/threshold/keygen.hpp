// Service key material: (n, f) threshold ElGamal keys.
//
// A distributed service's private key k_S never exists in one place; each
// server i holds a Shamir share x_i, and the Feldman commitments make every
// share publicly verifiable. Key material is produced either by a trusted
// dealer (simple, used by most tests/benches) or by a joint-Feldman DKG in
// which no party ever learns k_S.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "elgamal/elgamal.hpp"
#include "threshold/feldman.hpp"
#include "threshold/shamir.hpp"

namespace dblind::threshold {

struct ServiceConfig {
  std::size_t n;  // number of servers
  std::size_t f;  // tolerated compromises; key threshold is f+1

  [[nodiscard]] std::size_t quorum() const { return f + 1; }

  // The paper assumes 3f + 1 = n; protocols extend to 3f + 1 < n.
  [[nodiscard]] bool byzantine_safe() const { return 3 * f + 1 <= n; }
};

class ServiceKeyMaterial {
 public:
  // Trusted-dealer keygen: dealer samples k_S, shares it, then forgets it.
  static ServiceKeyMaterial dealer_keygen(const group::GroupParams& params,
                                          const ServiceConfig& cfg, mpz::Prng& prng);

  [[nodiscard]] const group::GroupParams& params() const { return params_; }
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }
  // Service public key K_S (ElGamal).
  [[nodiscard]] const elgamal::PublicKey& public_key() const { return pub_; }
  // Feldman commitments for share verification.
  [[nodiscard]] const FeldmanCommitments& commitments() const { return commitments_; }
  // Private key share of server `index` (1-based).
  [[nodiscard]] const Share& share_of(std::uint32_t index) const;
  // Verification key h_i = g^{x_i} of server `index`.
  [[nodiscard]] Bigint verification_key_of(std::uint32_t index) const;

  ServiceKeyMaterial(group::GroupParams params, ServiceConfig cfg, elgamal::PublicKey pub,
                     FeldmanCommitments commitments, std::vector<Share> shares);

 private:
  group::GroupParams params_;
  ServiceConfig cfg_;
  elgamal::PublicKey pub_;
  FeldmanCommitments commitments_;
  std::vector<Share> shares_;  // shares_[i-1] belongs to server i
};

// --- Joint-Feldman distributed key generation -------------------------------
//
// Each of the n participants deals a random secret with Feldman VSS;
// participants verify the sub-shares they receive and complain about bad
// dealers, who are disqualified. The service key is the sum of the qualified
// dealers' secrets; no single party ever sees it. `cheaters` (for tests and
// fault-injection benches) lists dealers that send corrupted sub-shares.
struct DkgResult {
  ServiceKeyMaterial material;
  std::vector<std::uint32_t> disqualified;  // dealer indices caught cheating
};

[[nodiscard]] DkgResult run_joint_feldman_dkg(const group::GroupParams& params,
                                              const ServiceConfig& cfg, mpz::Prng& prng,
                                              const std::set<std::uint32_t>& cheaters = {});

}  // namespace dblind::threshold
