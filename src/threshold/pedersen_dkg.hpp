// Two-phase distributed key generation with Pedersen commitments.
//
// The plain joint-Feldman DKG (keygen.hpp) publishes g^{a_{d,0}} immediately,
// which lets a rushing adversary bias the distribution of the final public
// key (Gennaro, Jarecki, Krawczyk, Rabin '99). The fix implemented here:
//
//   Phase 1 — every dealer runs Pedersen VSS (perfectly hiding commitments
//     E_{d,j} = g^{a_{d,j}} h^{b_{d,j}}); participants verify their share
//     pairs and disqualify bad dealers. The qualified set QUAL is now FIXED
//     before anything about the key is revealed.
//   Phase 2 — each dealer in QUAL opens the g-part: it publishes Feldman
//     commitments A_{d,j} = g^{a_{d,j}}. Every participant cross-checks its
//     share against them; a dealer whose opening is inconsistent is exposed
//     by revealing the (verified) share pair, and its secret is
//     reconstructed from the phase-1 shares rather than dropped — so QUAL
//     (and hence the key) cannot change after phase 1.
//
// The result is a ServiceKeyMaterial indistinguishable from dealer keygen:
// public key y = Π A_{d,0}, joint Feldman commitments for share
// verification, and one share per server.
#pragma once

#include <set>

#include "threshold/keygen.hpp"
#include "threshold/pedersen_vss.hpp"

namespace dblind::threshold {

struct PedersenDkgResult {
  ServiceKeyMaterial material;
  // Dealers disqualified in phase 1 (bad Pedersen shares).
  std::vector<std::uint32_t> disqualified_phase1;
  // Dealers in QUAL whose phase-2 opening was inconsistent; their
  // contribution was reconstructed publicly instead of trusted.
  std::vector<std::uint32_t> exposed_phase2;
};

// `cheaters_phase1`: dealers sending bad Pedersen sub-shares (caught and
// disqualified in phase 1). `cheaters_phase2`: dealers that complete phase 1
// honestly but publish a wrong Feldman opening (caught, exposed, and
// reconstructed in phase 2).
[[nodiscard]] PedersenDkgResult run_pedersen_dkg(const group::GroupParams& params,
                                                 const ServiceConfig& cfg, mpz::Prng& prng,
                                                 const std::set<std::uint32_t>& cheaters_phase1 = {},
                                                 const std::set<std::uint32_t>& cheaters_phase2 = {});

}  // namespace dblind::threshold
