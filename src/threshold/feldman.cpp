#include "threshold/feldman.hpp"

#include <stdexcept>

#include "mpz/modmath.hpp"

namespace dblind::threshold {

FeldmanCommitments feldman_commit(const group::GroupParams& params,
                                  std::span<const Bigint> poly_coeffs) {
  if (poly_coeffs.empty()) throw std::invalid_argument("feldman_commit: no coefficients");
  FeldmanCommitments out;
  out.coefficients.reserve(poly_coeffs.size());
  for (const Bigint& a : poly_coeffs) out.coefficients.push_back(params.pow_g(a));
  return out;
}

Bigint feldman_eval(const group::GroupParams& params, const FeldmanCommitments& c,
                    std::uint32_t index) {
  if (c.coefficients.empty()) throw std::invalid_argument("feldman_eval: empty commitments");
  // Π_j C_j^{i^j} evaluated Horner-style in the exponent:
  // acc = C_d; acc = acc^i * C_{d-1}; ...
  Bigint acc = c.coefficients.back();
  Bigint iv(static_cast<std::uint64_t>(index));
  for (std::size_t j = c.coefficients.size() - 1; j-- > 0;) {
    acc = params.mul(params.pow(acc, iv), c.coefficients[j]);
  }
  return acc;
}

bool feldman_verify(const group::GroupParams& params, const FeldmanCommitments& c,
                    const Share& share) {
  if (share.index == 0) return false;
  if (share.value.is_negative() || share.value >= params.q()) return false;
  return params.pow_g(share.value) == feldman_eval(params, c, share.index);
}

}  // namespace dblind::threshold
