// Primality testing and (safe-)prime generation.
//
// The library ships fixed parameter sets (src/group/params.cpp), but users
// can generate fresh groups; safe-prime search uses small-prime trial
// division in front of Miller-Rabin.
#pragma once

#include "mpz/bigint.hpp"
#include "mpz/random.hpp"

namespace dblind::mpz {

// Miller-Rabin with `rounds` random bases. Error probability <= 4^-rounds for
// composites. Deterministically correct for n < 3317044064679887385961981
// when rounds >= 13 is combined with the fixed-base prefilter we run first.
[[nodiscard]] bool is_probable_prime(const Bigint& n, Prng& prng, int rounds = 40);

// Random prime with exactly `bits` bits.
[[nodiscard]] Bigint generate_prime(std::size_t bits, Prng& prng, int rounds = 40);

// Safe prime p = 2q + 1 with p of exactly `bits` bits; returns {p, q}.
struct SafePrime {
  Bigint p, q;
};
[[nodiscard]] SafePrime generate_safe_prime(std::size_t bits, Prng& prng, int rounds = 40);

}  // namespace dblind::mpz
