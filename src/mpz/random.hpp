// Deterministic cryptographically-strong pseudo-randomness.
//
// Every randomized piece of the library (contributions ρ_i, encryption
// nonces, ZK commitments, simulator schedules) draws from a Prng so that
// whole protocol runs replay bit-for-bit from a seed. The generator is a
// from-scratch ChaCha20 keystream (RFC 8439 block function) keyed from the
// seed; `fork` derives independent child streams for per-node randomness.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "mpz/bigint.hpp"

namespace dblind::mpz {

class Prng {
 public:
  // Deterministic seed; identical seeds produce identical streams.
  explicit Prng(std::uint64_t seed);
  // Keyed construction (e.g. from a hash); key is the full 32-byte ChaCha key.
  explicit Prng(const std::array<std::uint8_t, 32>& key);

  // Seeds from the operating system (getentropy). For production use;
  // tests and the simulator use the deterministic constructors.
  static Prng from_os_entropy();

  void fill(std::span<std::uint8_t> out);
  [[nodiscard]] std::uint64_t next_u64();
  // Uniform in [0, bound) via rejection sampling. Precondition: bound > 0.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t bound);

  // Uniformly random integer in [0, bound) via rejection sampling.
  // Precondition: bound > 0.
  [[nodiscard]] Bigint uniform_below(const Bigint& bound);
  // Uniformly random integer in [1, bound) — i.e. Z_q^* style sampling.
  // Precondition: bound > 1.
  [[nodiscard]] Bigint uniform_nonzero_below(const Bigint& bound);
  // Random integer with exactly `bits` bits (top bit set).
  [[nodiscard]] Bigint random_bits(std::size_t bits);

  // Derives an independent child generator; children with different labels
  // (or derived from different parents) produce independent streams.
  [[nodiscard]] Prng fork(std::string_view label);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, 64> block_{};
  std::size_t pos_ = 64;  // forces refill on first use
};

}  // namespace dblind::mpz
