// Montgomery-form modular multiplication and exponentiation.
//
// All the hot paths in the library (ElGamal, Chaum-Pedersen, VDE, threshold
// shares) reduce to modular exponentiation over a fixed safe-prime modulus,
// so a reusable per-modulus context pays for its setup almost immediately.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "mpz/bigint.hpp"

namespace dblind::mpz {

class MontgomeryCtx {
 public:
  // Precondition: `modulus` is odd and > 1 (checked; throws
  // std::invalid_argument otherwise).
  explicit MontgomeryCtx(Bigint modulus);

  [[nodiscard]] const Bigint& modulus() const { return n_; }

  // (a * b) mod n, for 0 <= a, b < n.
  [[nodiscard]] Bigint mul(const Bigint& a, const Bigint& b) const;

  // (base ^ exp) mod n, for 0 <= base < n and exp >= 0. Fixed 4-bit window.
  [[nodiscard]] Bigint pow(const Bigint& base, const Bigint& exp) const;

  // (a^ea · b^eb) mod n via Shamir's trick (one shared squaring chain):
  // ~40% cheaper than two separate exponentiations. Verification equations
  // (Schnorr, Chaum-Pedersen) are exactly this shape.
  [[nodiscard]] Bigint pow2(const Bigint& a, const Bigint& ea, const Bigint& b,
                            const Bigint& eb) const;

  // Π bases[i]^{exps[i]} mod n with one shared squaring chain — the building
  // block of batch verification. Dispatches on the base count: 1 base falls
  // through to pow(), 2–4 bases use interleaved 2-bit-windowed Shamir tables,
  // larger sets use Pippenger's bucket method.
  // Preconditions: equal-length spans, bases in [0, n), exps >= 0.
  [[nodiscard]] Bigint multi_pow(std::span<const Bigint> bases,
                                 std::span<const Bigint> exps) const;

  // Montgomery multiplications performed through this context since
  // construction (squarings included). Monotone, thread-safe, and — unlike
  // wall-clock time — identical across machines for a deterministic run, so
  // the bench regression gate keys off it.
  [[nodiscard]] std::uint64_t mul_count() const {
    return mul_count_.load(std::memory_order_relaxed);
  }

  // The counter cell itself, for obs::ScopedCounterDelta phase attribution
  // and obs::MetricsRegistry::attach_counter. Read-only; stays valid for
  // the context's lifetime.
  [[nodiscard]] const std::atomic<std::uint64_t>& mul_count_cell() const {
    return mul_count_;
  }

 private:
  friend class FixedBasePow;
  using Limbs = std::vector<std::uint64_t>;

  // Montgomery reduction of a (<= 2k-limb) product; result < n in Montgomery
  // domain semantics.
  [[nodiscard]] Limbs redc(Limbs t) const;
  [[nodiscard]] Limbs mont_mul(const Limbs& a, const Limbs& b) const;
  [[nodiscard]] Limbs to_mont(const Bigint& a) const;
  [[nodiscard]] Bigint from_mont(const Limbs& a) const;

  [[nodiscard]] Limbs multi_pow_shamir(const std::vector<Limbs>& mont,
                                       std::span<const Bigint> exps, std::size_t bits) const;
  [[nodiscard]] Limbs multi_pow_pippenger(const std::vector<Limbs>& mont,
                                          std::span<const Bigint> exps, std::size_t bits) const;

  Bigint n_;
  std::size_t k_ = 0;        // limb count of n
  std::uint64_t n0inv_ = 0;  // -n^{-1} mod 2^64
  Bigint rr_;                // R^2 mod n, R = 2^{64k}
  Limbs one_mont_;           // R mod n
  // Instrumentation counter, deliberately NOT a dblind::Mutex-guarded field
  // (see the guarded-vs-atomic policy in docs/STATIC_ANALYSIS.md): it is a
  // monotone statistic with no invariant tying it to other state, every
  // access is a single relaxed atomic op, and callers that need a
  // consistent before/after pair (bench gates, ScopedCounterDelta) bracket
  // a quiescent region themselves. A mutex here would serialize every
  // mont-mul in the hot path for nothing.
  mutable std::atomic<std::uint64_t> mul_count_{0};
};

// Fixed-base exponentiation with a precomputed comb table: for a base used
// in thousands of exponentiations (the group generator g, a long-lived
// public key y), precomputing base^(j·2^(w·i)) for j ∈ [0, 2^w) and every
// w-bit window position i eliminates all squarings — each exponentiation
// becomes ~bits/w Montgomery multiplications. Setup costs ~(2^w/w)·bits
// multiplications, amortized after a handful of uses. The default window
// (w = 4) matches the original cache tables; pinned protocol bases (g, h,
// y_A, y_B) use w = 5, trading a 2× larger one-time table for ~20% fewer
// multiplications on every exponentiation.
class FixedBasePow {
 public:
  static constexpr std::size_t kWindow = 4;

  // Precondition: 0 <= base < ctx.modulus(); exponents passed to pow() must
  // have bit_length() <= max_exp_bits; window_bits in [1, 8]. The context
  // must outlive this object.
  FixedBasePow(const MontgomeryCtx& ctx, const Bigint& base, std::size_t max_exp_bits,
               std::size_t window_bits = kWindow);

  // base ^ exp mod n, exp in [0, 2^max_exp_bits).
  [[nodiscard]] Bigint pow(const Bigint& exp) const;

  [[nodiscard]] std::size_t window_bits() const { return window_; }

 private:
  const MontgomeryCtx& ctx_;
  std::size_t window_ = kWindow;
  std::size_t windows_ = 0;
  // table_[i][j] = mont(base^(j * 2^(window_*i))), j in [0, 2^window_).
  std::vector<std::vector<MontgomeryCtx::Limbs>> table_;
};

}  // namespace dblind::mpz
