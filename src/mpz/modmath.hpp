// Modular arithmetic and elementary number theory on Bigint.
//
// Free functions here take the modulus explicitly and normalise results into
// [0, m). Hot loops should prefer a MontgomeryCtx; these are the convenience
// entry points used by setup code, tests, and non-critical paths.
#pragma once

#include "mpz/bigint.hpp"
#include "mpz/montgomery.hpp"

namespace dblind::mpz {

// a mod m, normalised into [0, m). Precondition: m > 0.
[[nodiscard]] Bigint mod(const Bigint& a, const Bigint& m);

[[nodiscard]] Bigint addmod(const Bigint& a, const Bigint& b, const Bigint& m);
[[nodiscard]] Bigint submod(const Bigint& a, const Bigint& b, const Bigint& m);
[[nodiscard]] Bigint mulmod(const Bigint& a, const Bigint& b, const Bigint& m);

// (base ^ exp) mod m for exp >= 0, odd m via Montgomery, even m via the
// generic square-and-multiply fallback.
[[nodiscard]] Bigint powmod(const Bigint& base, const Bigint& exp, const Bigint& m);

[[nodiscard]] Bigint gcd(Bigint a, Bigint b);

// Returns (g, x, y) with a*x + b*y == g == gcd(a, b).
struct EgcdResult {
  Bigint g, x, y;
};
[[nodiscard]] EgcdResult egcd(const Bigint& a, const Bigint& b);

// Multiplicative inverse of a modulo m, in [0, m). Throws std::domain_error
// when gcd(a, m) != 1.
[[nodiscard]] Bigint invmod(const Bigint& a, const Bigint& m);

// Jacobi symbol (a/n) for odd n > 0; in {-1, 0, 1}.
[[nodiscard]] int jacobi(Bigint a, Bigint n);

}  // namespace dblind::mpz
