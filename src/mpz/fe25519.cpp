#include "mpz/fe25519.hpp"

#include <cstring>

namespace dblind::mpz {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask = (u64{1} << 51) - 1;
// 2p in radix-2^51 limbs, added before subtraction so limbs stay nonnegative.
constexpr u64 kTwoP0 = 0xFFFFFFFFFFFDA;
constexpr u64 kTwoP1234 = 0xFFFFFFFFFFFFE;

u64 load64(const std::uint8_t* in) {
  u64 v = 0;
  std::memcpy(&v, in, 8);
  return v;  // little-endian hosts only; the repo already assumes LE codecs
}

void store64(std::uint8_t* out, u64 v) { std::memcpy(out, &v, 8); }

// Carry chain folding the 2^255 overflow back via * 19; leaves limbs < 2^52.
void fe_carry(Fe25519& r) {
  u64 c;
  c = r.l[0] >> 51; r.l[0] &= kMask; r.l[1] += c;
  c = r.l[1] >> 51; r.l[1] &= kMask; r.l[2] += c;
  c = r.l[2] >> 51; r.l[2] &= kMask; r.l[3] += c;
  c = r.l[3] >> 51; r.l[3] &= kMask; r.l[4] += c;
  c = r.l[4] >> 51; r.l[4] &= kMask; r.l[0] += c * 19;
  c = r.l[0] >> 51; r.l[0] &= kMask; r.l[1] += c;
}

// Fully reduce into [0, p) (curve25519-donna-c64 contract step).
void fe_reduce_full(Fe25519& t) {
  fe_carry(t);
  fe_carry(t);
  // t in [0, 2^255). Add 19: values in [p, 2^255) wrap past 2^255 once we add
  // 2^255 - 19 below; values in [0, p) do not.
  t.l[0] += 19;
  fe_carry(t);
  t.l[0] += (u64{1} << 51) - 19;
  t.l[1] += (u64{1} << 51) - 1;
  t.l[2] += (u64{1} << 51) - 1;
  t.l[3] += (u64{1} << 51) - 1;
  t.l[4] += (u64{1} << 51) - 1;
  // t is now offset by exactly 2^255; carry without folding and drop bit 255.
  u64 c;
  c = t.l[0] >> 51; t.l[0] &= kMask; t.l[1] += c;
  c = t.l[1] >> 51; t.l[1] &= kMask; t.l[2] += c;
  c = t.l[2] >> 51; t.l[2] &= kMask; t.l[3] += c;
  c = t.l[3] >> 51; t.l[3] &= kMask; t.l[4] += c;
  t.l[4] &= kMask;
}

}  // namespace

std::uint64_t& fe_mul_count() {
  thread_local std::uint64_t count = 0;
  return count;
}

Fe25519 fe_add(const Fe25519& a, const Fe25519& b) {
  Fe25519 r;
  for (int i = 0; i < 5; ++i) r.l[i] = a.l[i] + b.l[i];
  fe_carry(r);
  return r;
}

Fe25519 fe_sub(const Fe25519& a, const Fe25519& b) {
  Fe25519 r;
  r.l[0] = a.l[0] + kTwoP0 - b.l[0];
  r.l[1] = a.l[1] + kTwoP1234 - b.l[1];
  r.l[2] = a.l[2] + kTwoP1234 - b.l[2];
  r.l[3] = a.l[3] + kTwoP1234 - b.l[3];
  r.l[4] = a.l[4] + kTwoP1234 - b.l[4];
  fe_carry(r);
  return r;
}

Fe25519 fe_neg(const Fe25519& a) { return fe_sub(Fe25519::zero(), a); }

Fe25519 fe_mul(const Fe25519& a, const Fe25519& b) {
  ++fe_mul_count();
  const u64 a0 = a.l[0], a1 = a.l[1], a2 = a.l[2], a3 = a.l[3], a4 = a.l[4];
  const u64 b0 = b.l[0], b1 = b.l[1], b2 = b.l[2], b3 = b.l[3], b4 = b.l[4];
  const u64 b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;
  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 +
            (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 +
            (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 + (u128)a3 * b4_19 +
            (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 +
            (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 +
            (u128)a4 * b0;
  Fe25519 r;
  u64 c;
  r.l[0] = (u64)t0 & kMask; c = (u64)(t0 >> 51);
  t1 += c;
  r.l[1] = (u64)t1 & kMask; c = (u64)(t1 >> 51);
  t2 += c;
  r.l[2] = (u64)t2 & kMask; c = (u64)(t2 >> 51);
  t3 += c;
  r.l[3] = (u64)t3 & kMask; c = (u64)(t3 >> 51);
  t4 += c;
  r.l[4] = (u64)t4 & kMask; c = (u64)(t4 >> 51);
  r.l[0] += c * 19;
  c = r.l[0] >> 51; r.l[0] &= kMask; r.l[1] += c;
  return r;
}

Fe25519 fe_sq(const Fe25519& a) { return fe_mul(a, a); }

Fe25519 fe_sq2(const Fe25519& a) { return fe_add(fe_sq(a), fe_sq(a)); }

Fe25519 fe_mul_small(const Fe25519& a, std::uint64_t k) {
  Fe25519 r;
  u128 t;
  u64 c = 0;
  for (int i = 0; i < 5; ++i) {
    t = (u128)a.l[i] * k + c;
    r.l[i] = (u64)t & kMask;
    c = (u64)(t >> 51);
  }
  r.l[0] += c * 19;
  fe_carry(r);
  return r;
}

namespace {

// a^(2^n) by n repeated squarings.
Fe25519 fe_sq_n(Fe25519 a, int n) {
  for (int i = 0; i < n; ++i) a = fe_sq(a);
  return a;
}

// z^(2^250 - 1) — the shared prefix of the p-2 and (p-5)/8 addition chains.
// Also yields z^11 which the invert tail needs.
struct ChainResult {
  Fe25519 z2_250_0;
  Fe25519 z11;
};

ChainResult fe_chain_250(const Fe25519& z) {
  Fe25519 z2 = fe_sq(z);
  Fe25519 z8 = fe_sq_n(z2, 2);
  Fe25519 z9 = fe_mul(z8, z);
  Fe25519 z11 = fe_mul(z9, z2);
  Fe25519 z2_5_0 = fe_mul(fe_sq(z11), z9);                // 2^5 - 1
  Fe25519 z2_10_0 = fe_mul(fe_sq_n(z2_5_0, 5), z2_5_0);   // 2^10 - 1
  Fe25519 z2_20_0 = fe_mul(fe_sq_n(z2_10_0, 10), z2_10_0);
  Fe25519 z2_40_0 = fe_mul(fe_sq_n(z2_20_0, 20), z2_20_0);
  Fe25519 z2_50_0 = fe_mul(fe_sq_n(z2_40_0, 10), z2_10_0);
  Fe25519 z2_100_0 = fe_mul(fe_sq_n(z2_50_0, 50), z2_50_0);
  Fe25519 z2_200_0 = fe_mul(fe_sq_n(z2_100_0, 100), z2_100_0);
  Fe25519 z2_250_0 = fe_mul(fe_sq_n(z2_200_0, 50), z2_50_0);
  return {z2_250_0, z11};
}

}  // namespace

Fe25519 fe_invert(const Fe25519& a) {
  ChainResult c = fe_chain_250(a);
  // 2^255 - 2^5, then * z^11: exponent 2^255 - 21 = p - 2.
  return fe_mul(fe_sq_n(c.z2_250_0, 5), c.z11);
}

Fe25519 fe_pow22523(const Fe25519& a) {
  ChainResult c = fe_chain_250(a);
  // 2^252 - 4, then * z: exponent 2^252 - 3 = (p - 5) / 8.
  return fe_mul(fe_sq_n(c.z2_250_0, 2), a);
}

void fe_to_bytes(std::span<std::uint8_t, 32> out, const Fe25519& a) {
  Fe25519 t = a;
  fe_reduce_full(t);
  store64(out.data(), t.l[0] | (t.l[1] << 51));
  store64(out.data() + 8, (t.l[1] >> 13) | (t.l[2] << 38));
  store64(out.data() + 16, (t.l[2] >> 26) | (t.l[3] << 25));
  store64(out.data() + 24, (t.l[3] >> 39) | (t.l[4] << 12));
}

Fe25519 fe_from_bytes(std::span<const std::uint8_t, 32> in) {
  Fe25519 r;
  r.l[0] = load64(in.data()) & kMask;
  r.l[1] = (load64(in.data() + 6) >> 3) & kMask;
  r.l[2] = (load64(in.data() + 12) >> 6) & kMask;
  r.l[3] = (load64(in.data() + 19) >> 1) & kMask;
  r.l[4] = (load64(in.data() + 24) >> 12) & kMask;
  return r;
}

bool fe_is_zero(const Fe25519& a) {
  std::uint8_t b[32];
  fe_to_bytes(std::span<std::uint8_t, 32>(b), a);
  std::uint8_t acc = 0;
  for (std::uint8_t v : b) acc |= v;
  return acc == 0;
}

bool fe_is_negative(const Fe25519& a) {
  std::uint8_t b[32];
  fe_to_bytes(std::span<std::uint8_t, 32>(b), a);
  return (b[0] & 1) != 0;
}

bool fe_eq(const Fe25519& a, const Fe25519& b) { return fe_is_zero(fe_sub(a, b)); }

void fe_cmov(Fe25519& a, const Fe25519& b, bool flag) {
  const u64 mask = ~(static_cast<u64>(flag) - 1);
  for (int i = 0; i < 5; ++i) a.l[i] ^= mask & (a.l[i] ^ b.l[i]);
}

Fe25519 fe_abs(const Fe25519& a) {
  Fe25519 r = a;
  fe_cmov(r, fe_neg(a), fe_is_negative(a));
  return r;
}

namespace {

// sqrt(-1) = 2^((p-1)/4) mod p, precomputed limbs (verified against the
// field-fuzz test's Bigint oracle and fe_sqrt_ratio_m1(1, 1-trick) cases).
constexpr Fe25519 kSqrtM1{{0x61b274a0ea0b0, 0xd5a5fc8f189d, 0x7ef5e9cbd0c60,
                           0x78595a6804c9e, 0x2b8324804fc1d}};

}  // namespace

SqrtRatioResult fe_sqrt_ratio_m1(const Fe25519& u, const Fe25519& v) {
  // RFC 9496 §4.2 (p == 5 mod 8 case).
  Fe25519 v3 = fe_mul(fe_sq(v), v);
  Fe25519 v7 = fe_mul(fe_sq(v3), v);
  Fe25519 r = fe_mul(fe_mul(u, v3), fe_pow22523(fe_mul(u, v7)));
  Fe25519 check = fe_mul(v, fe_sq(r));

  Fe25519 neg_u = fe_neg(u);
  bool correct_sign = fe_eq(check, u);
  bool flipped_sign = fe_eq(check, neg_u);
  bool flipped_sign_i = fe_eq(check, fe_mul(neg_u, kSqrtM1));

  Fe25519 r_prime = fe_mul(r, kSqrtM1);
  fe_cmov(r, r_prime, flipped_sign || flipped_sign_i);

  SqrtRatioResult out;
  out.root = fe_abs(r);
  out.was_square = correct_sign || flipped_sign;
  return out;
}

}  // namespace dblind::mpz
