#include "mpz/modmath.hpp"

#include <stdexcept>
#include <utility>

namespace dblind::mpz {

Bigint mod(const Bigint& a, const Bigint& m) {
  if (m.is_zero() || m.is_negative()) throw std::domain_error("mod: modulus must be positive");
  Bigint r = a % m;
  if (r.is_negative()) r += m;
  return r;
}

Bigint addmod(const Bigint& a, const Bigint& b, const Bigint& m) { return mod(a + b, m); }

Bigint submod(const Bigint& a, const Bigint& b, const Bigint& m) { return mod(a - b, m); }

Bigint mulmod(const Bigint& a, const Bigint& b, const Bigint& m) { return mod(a * b, m); }

Bigint powmod(const Bigint& base, const Bigint& exp, const Bigint& m) {
  if (m.is_zero() || m.is_negative()) throw std::domain_error("powmod: modulus must be positive");
  if (m == Bigint(1)) return Bigint(0);
  Bigint b = mod(base, m);
  if (exp.is_negative()) return powmod(invmod(b, m), exp.negated(), m);
  if (m.is_odd()) return MontgomeryCtx(m).pow(b, exp);
  // Generic square-and-multiply for even moduli (rare; test-only).
  Bigint acc(1);
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    acc = mulmod(acc, acc, m);
    if (exp.bit(i)) acc = mulmod(acc, b, m);
  }
  return acc;
}

Bigint gcd(Bigint a, Bigint b) {
  a = a.abs();
  b = b.abs();
  while (!b.is_zero()) {
    Bigint r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

EgcdResult egcd(const Bigint& a, const Bigint& b) {
  // Iterative extended Euclid maintaining r = a*x + b*y.
  Bigint old_r = a, r = b;
  Bigint old_x(1), x(0);
  Bigint old_y(0), y(1);
  while (!r.is_zero()) {
    Bigint q, rem;
    Bigint::divmod(old_r, r, q, rem);
    old_r = std::exchange(r, std::move(rem));
    Bigint nx = old_x - q * x;
    old_x = std::exchange(x, std::move(nx));
    Bigint ny = old_y - q * y;
    old_y = std::exchange(y, std::move(ny));
  }
  if (old_r.is_negative()) {
    old_r = old_r.negated();
    old_x = old_x.negated();
    old_y = old_y.negated();
  }
  return {std::move(old_r), std::move(old_x), std::move(old_y)};
}

Bigint invmod(const Bigint& a, const Bigint& m) {
  if (m.is_zero() || m.is_negative()) throw std::domain_error("invmod: modulus must be positive");
  EgcdResult e = egcd(mod(a, m), m);
  if (e.g != Bigint(1)) throw std::domain_error("invmod: not invertible");
  return mod(e.x, m);
}

int jacobi(Bigint a, Bigint n) {
  if (n.is_negative() || n.is_even() || n.is_zero())
    throw std::domain_error("jacobi: n must be positive odd");
  a = mod(a, n);
  int result = 1;
  while (!a.is_zero()) {
    while (a.is_even()) {
      a = a.shr(1);
      // (2/n) = -1 iff n ≡ 3, 5 (mod 8)
      std::uint64_t n8 = n.limbs()[0] & 7u;
      if (n8 == 3 || n8 == 5) result = -result;
    }
    std::swap(a, n);
    // Quadratic reciprocity flip when both ≡ 3 (mod 4).
    if ((a.limbs()[0] & 3u) == 3 && (n.limbs()[0] & 3u) == 3) result = -result;
    a = mod(a, n);
  }
  return n == Bigint(1) ? result : 0;
}

}  // namespace dblind::mpz
