#include "mpz/prime.hpp"

#include <array>
#include <stdexcept>
#include <vector>

#include "mpz/modmath.hpp"

namespace dblind::mpz {

namespace {

// Small primes for trial division; enough to reject the vast majority of
// random candidates before a Miller-Rabin round is spent.
const std::vector<std::uint64_t>& small_primes() {
  static const std::vector<std::uint64_t> primes = [] {
    constexpr std::size_t kLimit = 8192;
    std::vector<bool> sieve(kLimit, true);
    std::vector<std::uint64_t> out;
    for (std::size_t i = 2; i < kLimit; ++i) {
      if (!sieve[i]) continue;
      out.push_back(i);
      for (std::size_t j = i * i; j < kLimit; j += i) sieve[j] = false;
    }
    return out;
  }();
  return primes;
}

// n mod d for small d without building a Bigint.
std::uint64_t mod_small(const Bigint& n, std::uint64_t d) {
  unsigned __int128 r = 0;
  auto limbs = n.limbs();
  for (std::size_t i = limbs.size(); i-- > 0;) r = ((r << 64) | limbs[i]) % d;
  return static_cast<std::uint64_t>(r);
}

bool miller_rabin_round(const Bigint& n, const Bigint& a, const Bigint& d, std::size_t r,
                        const MontgomeryCtx& ctx) {
  const Bigint n_minus_1 = n - Bigint(1);
  Bigint x = ctx.pow(a, d);
  if (x == Bigint(1) || x == n_minus_1) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = ctx.mul(x, x);
    if (x == n_minus_1) return true;
  }
  return false;
}

}  // namespace

bool is_probable_prime(const Bigint& n, Prng& prng, int rounds) {
  if (n < Bigint(2)) return false;
  for (std::uint64_t p : small_primes()) {
    if (n == Bigint(p)) return true;
    if (mod_small(n, p) == 0) return false;
  }
  // Write n-1 = d * 2^r with d odd.
  Bigint d = n - Bigint(1);
  std::size_t r = 0;
  while (d.is_even()) {
    d = d.shr(1);
    ++r;
  }
  MontgomeryCtx ctx(n);
  const Bigint n_minus_2 = n - Bigint(2);
  for (int i = 0; i < rounds; ++i) {
    // a uniform in [2, n-2]
    Bigint a = prng.uniform_below(n_minus_2 - Bigint(1)) + Bigint(2);
    if (!miller_rabin_round(n, a, d, r, ctx)) return false;
  }
  return true;
}

Bigint generate_prime(std::size_t bits, Prng& prng, int rounds) {
  if (bits < 2) throw std::invalid_argument("generate_prime: need bits >= 2");
  for (;;) {
    Bigint cand = prng.random_bits(bits);
    if (cand.is_even()) cand += Bigint(1);
    if (is_probable_prime(cand, prng, rounds)) return cand;
  }
}

SafePrime generate_safe_prime(std::size_t bits, Prng& prng, int rounds) {
  if (bits < 4) throw std::invalid_argument("generate_safe_prime: need bits >= 4");
  for (;;) {
    Bigint q = prng.random_bits(bits - 1);
    if (q.is_even()) q += Bigint(1);
    // Cheap joint pre-screen on q and p = 2q+1 before any Miller-Rabin.
    bool screened_out = false;
    for (std::uint64_t sp : small_primes()) {
      std::uint64_t qr = mod_small(q, sp);
      if (qr == 0 && q != Bigint(sp)) {
        screened_out = true;
        break;
      }
      if ((2 * qr + 1) % sp == 0 && !(q == Bigint((sp - 1) / 2))) {
        screened_out = true;
        break;
      }
    }
    if (screened_out) continue;
    if (!is_probable_prime(q, prng, rounds)) continue;
    Bigint p = q.shl(1) + Bigint(1);
    if (p.bit_length() != bits) continue;
    if (is_probable_prime(p, prng, rounds)) return {std::move(p), std::move(q)};
  }
}

}  // namespace dblind::mpz
