#include "mpz/montgomery.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dblind::mpz {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// Inverse of odd x modulo 2^64 via Newton iteration (5 steps double precision
// each time: 4 -> 8 -> 16 -> 32 -> 64 bits).
u64 inv64(u64 x) {
  assert(x & 1);
  u64 inv = x;  // correct mod 2^3 for odd x (x*x ≡ 1 mod 8)
  for (int i = 0; i < 5; ++i) inv *= 2 - x * inv;
  return inv;
}

}  // namespace

MontgomeryCtx::MontgomeryCtx(Bigint modulus) : n_(std::move(modulus)) {
  if (n_.is_negative() || n_.is_zero() || !n_.is_odd() || n_ == Bigint(1))
    throw std::invalid_argument("MontgomeryCtx: modulus must be odd and > 1");
  k_ = n_.limbs().size();
  n0inv_ = ~inv64(n_.limbs()[0]) + 1;  // -n^{-1} mod 2^64
  // R = 2^{64k}; rr_ = R^2 mod n computed with plain bigint arithmetic (setup
  // only, so the slow path is fine).
  Bigint r = Bigint(1).shl(64 * k_);
  rr_ = (r * r) % n_;
  Bigint one_m = r % n_;
  one_mont_.assign(k_, 0);
  auto lm = one_m.limbs();
  for (std::size_t i = 0; i < lm.size(); ++i) one_mont_[i] = lm[i];
}

MontgomeryCtx::Limbs MontgomeryCtx::redc(Limbs t) const {
  // CIOS-style reduction: t has 2k (+1 carry) limbs; after k rounds of adding
  // m*n and shifting, the result is < 2n, then a conditional subtract.
  t.resize(2 * k_ + 1, 0);
  const auto n = n_.limbs();
  for (std::size_t i = 0; i < k_; ++i) {
    u64 m = t[i] * n0inv_;
    u64 carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      u128 cur = static_cast<u128>(m) * n[j] + t[i + j] + carry;
      t[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    std::size_t idx = i + k_;
    while (carry != 0) {
      u128 cur = static_cast<u128>(t[idx]) + carry;
      t[idx] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
      ++idx;
    }
  }
  Limbs out(t.begin() + static_cast<std::ptrdiff_t>(k_),
            t.begin() + static_cast<std::ptrdiff_t>(2 * k_ + 1));
  // out may be >= n (it is < 2n); subtract n once if needed.
  // Compare out (k_+1 limbs) against n (k_ limbs).
  bool ge = out[k_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k_; i-- > 0;) {
      if (out[i] != n[i]) {
        ge = out[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      u64 ai = out[i], bi = n[i];
      u64 d = ai - bi - borrow;
      borrow = (ai < bi || (ai == bi && borrow)) ? 1 : 0;
      out[i] = d;
    }
    out[k_] -= borrow;
  }
  out.resize(k_);
  return out;
}

MontgomeryCtx::Limbs MontgomeryCtx::mont_mul(const Limbs& a, const Limbs& b) const {
  mul_count_.fetch_add(1, std::memory_order_relaxed);
  Limbs t(2 * k_ + 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    u64 carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      u128 cur = static_cast<u128>(a[i]) * b[j] + t[i + j] + carry;
      t[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    std::size_t idx = i + b.size();
    while (carry != 0) {
      u128 cur = static_cast<u128>(t[idx]) + carry;
      t[idx] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
      ++idx;
    }
  }
  return redc(std::move(t));
}

MontgomeryCtx::Limbs MontgomeryCtx::to_mont(const Bigint& a) const {
  assert(!a.is_negative() && a < n_);
  Limbs al(k_, 0);
  auto src = a.limbs();
  for (std::size_t i = 0; i < src.size(); ++i) al[i] = src[i];
  Limbs rrl(k_, 0);
  auto rr = rr_.limbs();
  for (std::size_t i = 0; i < rr.size(); ++i) rrl[i] = rr[i];
  return mont_mul(al, rrl);
}

Bigint MontgomeryCtx::from_mont(const Limbs& a) const {
  Limbs t(a.begin(), a.end());
  t.resize(2 * k_ + 1, 0);
  Limbs r = redc(std::move(t));
  std::vector<std::uint8_t> be(r.size() * 8);
  for (std::size_t i = 0; i < r.size(); ++i) {
    for (std::size_t b = 0; b < 8; ++b)
      be[be.size() - 1 - (i * 8 + b)] = static_cast<std::uint8_t>(r[i] >> (8 * b));
  }
  return Bigint::from_bytes_be(be);
}

Bigint MontgomeryCtx::mul(const Bigint& a, const Bigint& b) const {
  return from_mont(mont_mul(to_mont(a), to_mont(b)));
}

Bigint MontgomeryCtx::pow(const Bigint& base, const Bigint& exp) const {
  if (exp.is_negative()) throw std::invalid_argument("MontgomeryCtx::pow: negative exponent");
  if (base.is_negative() || base >= n_)
    throw std::invalid_argument("MontgomeryCtx::pow: base out of range");
  if (exp.is_zero()) return from_mont(one_mont_);

  // 4-bit fixed window.
  constexpr std::size_t kWindow = 4;
  std::vector<Limbs> table(1u << kWindow);
  table[0] = one_mont_;
  table[1] = to_mont(base);
  for (std::size_t i = 2; i < table.size(); ++i) table[i] = mont_mul(table[i - 1], table[1]);

  const std::size_t bits = exp.bit_length();
  const std::size_t windows = (bits + kWindow - 1) / kWindow;
  Limbs acc = one_mont_;
  bool started = false;
  for (std::size_t w = windows; w-- > 0;) {
    if (started) {
      for (std::size_t s = 0; s < kWindow; ++s) acc = mont_mul(acc, acc);
    }
    unsigned idx = 0;
    for (std::size_t b = 0; b < kWindow; ++b) {
      std::size_t bitpos = w * kWindow + (kWindow - 1 - b);
      idx = (idx << 1) | (exp.bit(bitpos) ? 1u : 0u);
    }
    if (idx != 0) {
      acc = mont_mul(acc, table[idx]);
      started = true;
    } else if (!started) {
      // Leading zero window; nothing accumulated yet.
    }
  }
  if (!started) return from_mont(one_mont_);  // exp == 0 handled above; defensive
  return from_mont(acc);
}

Bigint MontgomeryCtx::multi_pow(std::span<const Bigint> bases,
                                std::span<const Bigint> exps) const {
  if (bases.size() != exps.size())
    throw std::invalid_argument("MontgomeryCtx::multi_pow: length mismatch");
  if (bases.empty()) return from_mont(one_mont_);
  std::size_t bits = 0;
  std::vector<Limbs> mont;
  mont.reserve(bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i) {
    if (bases[i].is_negative() || bases[i] >= n_)
      throw std::invalid_argument("MontgomeryCtx::multi_pow: base out of range");
    if (exps[i].is_negative())
      throw std::invalid_argument("MontgomeryCtx::multi_pow: negative exponent");
    bits = std::max(bits, exps[i].bit_length());
    mont.push_back(to_mont(bases[i]));
  }
  if (bits == 0) return from_mont(one_mont_);
  if (bases.size() == 1) return pow(bases[0], exps[0]);
  Limbs acc = bases.size() <= 4 ? multi_pow_shamir(mont, exps, bits)
                                : multi_pow_pippenger(mont, exps, bits);
  return from_mont(acc);
}

// Interleaved windowed Shamir's trick: each base gets a tiny odd-power table
// (base^1..base^3) and all bases share one squaring chain, consuming their
// exponents two bits at a time. For the 2–4 base verification equations this
// replaces per-base squaring chains with a single one.
MontgomeryCtx::Limbs MontgomeryCtx::multi_pow_shamir(const std::vector<Limbs>& mont,
                                                     std::span<const Bigint> exps,
                                                     std::size_t bits) const {
  const std::size_t n = mont.size();
  // tbl[i][d] = mont(base_i^d) for d in [1, 4).
  std::vector<std::array<Limbs, 4>> tbl(n);
  for (std::size_t i = 0; i < n; ++i) {
    tbl[i][1] = mont[i];
    tbl[i][2] = mont_mul(mont[i], mont[i]);
    tbl[i][3] = mont_mul(tbl[i][2], mont[i]);
  }
  const std::size_t windows = (bits + 1) / 2;
  Limbs acc = one_mont_;
  bool started = false;
  for (std::size_t w = windows; w-- > 0;) {
    if (started) {
      acc = mont_mul(acc, acc);
      acc = mont_mul(acc, acc);
    }
    for (std::size_t i = 0; i < n; ++i) {
      unsigned d = (exps[i].bit(2 * w + 1) ? 2u : 0u) | (exps[i].bit(2 * w) ? 1u : 0u);
      if (d != 0) {
        acc = mont_mul(acc, tbl[i][d]);
        started = true;
      }
    }
  }
  return started ? acc : one_mont_;
}

// Pippenger's bucket method: split exponents into c-bit windows; per window,
// drop each base into the bucket indexed by its window digit, then fold the
// buckets with the running-product identity Π_d bucket[d]^d computed in
// 2·(#nonempty-tail) multiplications. Squarings are amortised across all
// bases, and per-base work is one multiplication per window regardless of
// digit value — the asymptotically right shape for large batches.
MontgomeryCtx::Limbs MontgomeryCtx::multi_pow_pippenger(const std::vector<Limbs>& mont,
                                                        std::span<const Bigint> exps,
                                                        std::size_t bits) const {
  const std::size_t n = mont.size();
  // Window width ≈ log2(n), capped so the bucket-fold cost (~2^{c+1} muls per
  // window) stays in balance with the n bucket inserts.
  std::size_t c = 2;
  while (c < 8 && (std::size_t{1} << (c + 1)) <= n) ++c;
  const std::size_t buckets_count = (std::size_t{1} << c) - 1;
  const std::size_t windows = (bits + c - 1) / c;

  Limbs acc = one_mont_;
  bool started = false;
  std::vector<Limbs> bucket(buckets_count + 1);  // bucket[0] unused; empty = unset
  for (std::size_t w = windows; w-- > 0;) {
    if (started) {
      for (std::size_t s = 0; s < c; ++s) acc = mont_mul(acc, acc);
    }
    for (auto& b : bucket) b.clear();
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t digit = 0;
      for (std::size_t b = 0; b < c; ++b) {
        if (exps[i].bit(w * c + b)) digit |= std::size_t{1} << b;
      }
      if (digit == 0) continue;
      bucket[digit] = bucket[digit].empty() ? mont[i] : mont_mul(bucket[digit], mont[i]);
    }
    // Fold: running = Π_{e>=d} bucket[e]; window sum = Π_d running_d.
    Limbs running;
    Limbs wsum;
    for (std::size_t d = buckets_count; d >= 1; --d) {
      if (!bucket[d].empty())
        running = running.empty() ? bucket[d] : mont_mul(running, bucket[d]);
      if (!running.empty()) wsum = wsum.empty() ? running : mont_mul(wsum, running);
    }
    if (!wsum.empty()) {
      acc = started ? mont_mul(acc, wsum) : wsum;
      started = true;
    }
  }
  return started ? acc : one_mont_;
}

Bigint MontgomeryCtx::pow2(const Bigint& a, const Bigint& ea, const Bigint& b,
                           const Bigint& eb) const {
  if (ea.is_negative() || eb.is_negative())
    throw std::invalid_argument("MontgomeryCtx::pow2: negative exponent");
  if (a.is_negative() || a >= n_ || b.is_negative() || b >= n_)
    throw std::invalid_argument("MontgomeryCtx::pow2: base out of range");
  // 2-bit joint window: table[i][j] = a^i * b^j for i, j in [0, 4).
  Limbs am = to_mont(a);
  Limbs bm = to_mont(b);
  std::array<std::array<Limbs, 4>, 4> table;
  table[0][0] = one_mont_;
  table[1][0] = am;
  table[2][0] = mont_mul(am, am);
  table[3][0] = mont_mul(table[2][0], am);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 1; j < 4; ++j) table[i][j] = mont_mul(table[i][j - 1], bm);
  }

  const std::size_t bits = std::max(ea.bit_length(), eb.bit_length());
  if (bits == 0) return from_mont(one_mont_);
  const std::size_t windows = (bits + 1) / 2;
  Limbs acc = one_mont_;
  bool started = false;
  for (std::size_t w = windows; w-- > 0;) {
    if (started) {
      acc = mont_mul(acc, acc);
      acc = mont_mul(acc, acc);
    }
    unsigned ia = (ea.bit(2 * w + 1) ? 2u : 0u) | (ea.bit(2 * w) ? 1u : 0u);
    unsigned ib = (eb.bit(2 * w + 1) ? 2u : 0u) | (eb.bit(2 * w) ? 1u : 0u);
    if (ia != 0 || ib != 0) {
      acc = mont_mul(acc, table[ia][ib]);
      started = true;
    }
  }
  if (!started) return from_mont(one_mont_);
  return from_mont(acc);
}

FixedBasePow::FixedBasePow(const MontgomeryCtx& ctx, const Bigint& base,
                           std::size_t max_exp_bits, std::size_t window_bits)
    : ctx_(ctx), window_(window_bits) {
  if (base.is_negative() || base >= ctx.modulus())
    throw std::invalid_argument("FixedBasePow: base out of range");
  if (window_ == 0 || window_ > 8)
    throw std::invalid_argument("FixedBasePow: window_bits out of [1, 8]");
  if (max_exp_bits == 0) max_exp_bits = 1;
  windows_ = (max_exp_bits + window_ - 1) / window_;
  const std::size_t entries = 1ull << window_;
  table_.resize(windows_);

  MontgomeryCtx::Limbs cur = ctx_.to_mont(base);  // base^(2^(window_*i)) as i advances
  for (std::size_t i = 0; i < windows_; ++i) {
    table_[i].resize(entries);
    table_[i][0] = ctx_.one_mont_;
    table_[i][1] = cur;
    for (std::size_t j = 2; j < entries; ++j)
      table_[i][j] = ctx_.mont_mul(table_[i][j - 1], cur);
    // Advance cur to base^(2^(window_*(i+1))) = cur^(2^window_).
    if (i + 1 < windows_) cur = ctx_.mont_mul(table_[i][entries - 1], cur);
  }
}

Bigint FixedBasePow::pow(const Bigint& exp) const {
  if (exp.is_negative()) throw std::invalid_argument("FixedBasePow::pow: negative exponent");
  if (exp.bit_length() > windows_ * window_)
    throw std::invalid_argument("FixedBasePow::pow: exponent too large for table");
  MontgomeryCtx::Limbs acc = ctx_.one_mont_;
  for (std::size_t i = 0; i < windows_; ++i) {
    unsigned idx = 0;
    for (std::size_t b = 0; b < window_; ++b) {
      if (exp.bit(i * window_ + b)) idx |= 1u << b;
    }
    if (idx != 0) acc = ctx_.mont_mul(acc, table_[i][idx]);
  }
  return ctx_.from_mont(acc);
}

}  // namespace dblind::mpz
