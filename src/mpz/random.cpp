#include "mpz/random.hpp"

#include <unistd.h>

#include <bit>
#include <cstring>
#include <stdexcept>

#include "hash/sha256.hpp"

namespace dblind::mpz {

namespace {

constexpr std::array<std::uint32_t, 4> kSigma = {0x61707865u, 0x3320646eu, 0x79622d32u,
                                                 0x6b206574u};  // "expand 32-byte k"

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

void chacha20_block(const std::array<std::uint32_t, 16>& in, std::array<std::uint8_t, 64>& out) {
  std::array<std::uint32_t, 16> x = in;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    std::uint32_t v = x[i] + in[i];
    out[4 * i + 0] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

}  // namespace

Prng::Prng(std::uint64_t seed) {
  std::array<std::uint8_t, 32> key{};
  for (int i = 0; i < 8; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(seed >> (8 * i));
  *this = Prng(key);
}

Prng::Prng(const std::array<std::uint8_t, 32>& key) {
  for (int i = 0; i < 4; ++i) state_[static_cast<std::size_t>(i)] = kSigma[static_cast<std::size_t>(i)];
  for (int i = 0; i < 8; ++i) {
    std::uint32_t w = 0;
    for (int b = 3; b >= 0; --b) w = (w << 8) | key[static_cast<std::size_t>(4 * i + b)];
    state_[static_cast<std::size_t>(4 + i)] = w;
  }
  // counter (state_[12..13]) and nonce (state_[14..15]) start at zero.
}

Prng Prng::from_os_entropy() {
  std::array<std::uint8_t, 32> key{};
  if (getentropy(key.data(), key.size()) != 0)
    throw std::runtime_error("Prng::from_os_entropy: getentropy failed");
  return Prng(key);
}

void Prng::refill() {
  chacha20_block(state_, block_);
  pos_ = 0;
  // 128-bit counter over words 12..15 (we never use a nonce, so the whole
  // tail is counter space; wrap-around is unreachable).
  for (int i = 12; i < 16; ++i) {
    if (++state_[static_cast<std::size_t>(i)] != 0) break;
  }
}

void Prng::fill(std::span<std::uint8_t> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    if (pos_ == 64) refill();
    std::size_t take = std::min<std::size_t>(64 - pos_, out.size() - done);
    std::memcpy(out.data() + done, block_.data() + pos_, take);
    pos_ += take;
    done += take;
  }
}

std::uint64_t Prng::next_u64() {
  std::array<std::uint8_t, 8> buf{};
  fill(buf);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[static_cast<std::size_t>(i)];
  return v;
}

std::uint64_t Prng::uniform_u64(std::uint64_t bound) {
  if (bound == 0) throw std::domain_error("Prng::uniform_u64: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  for (;;) {
    std::uint64_t v = next_u64();
    if (v < limit) return v % bound;
  }
}

Bigint Prng::uniform_below(const Bigint& bound) {
  if (bound.is_zero() || bound.is_negative())
    throw std::domain_error("Prng::uniform_below: bound must be > 0");
  const std::size_t bits = bound.bit_length();
  const std::size_t bytes = (bits + 7) / 8;
  std::vector<std::uint8_t> buf(bytes);
  for (;;) {
    fill(buf);
    // Mask excess top bits so the rejection rate stays < 1/2.
    if (bits % 8 != 0) buf[0] &= static_cast<std::uint8_t>((1u << (bits % 8)) - 1);
    Bigint v = Bigint::from_bytes_be(buf);
    if (v < bound) return v;
  }
}

Bigint Prng::uniform_nonzero_below(const Bigint& bound) {
  if (bound <= Bigint(1))
    throw std::domain_error("Prng::uniform_nonzero_below: bound must be > 1");
  for (;;) {
    Bigint v = uniform_below(bound);
    if (!v.is_zero()) return v;
  }
}

Bigint Prng::random_bits(std::size_t bits) {
  if (bits == 0) return Bigint{};
  std::vector<std::uint8_t> buf((bits + 7) / 8);
  fill(buf);
  if (bits % 8 != 0) buf[0] &= static_cast<std::uint8_t>((1u << (bits % 8)) - 1);
  buf[0] |= static_cast<std::uint8_t>(1u << ((bits - 1) % 8));  // force top bit
  return Bigint::from_bytes_be(buf);
}

Prng Prng::fork(std::string_view label) {
  std::array<std::uint8_t, 32> parent_key{};
  fill(parent_key);
  hash::Sha256 h;
  h.update(std::span<const std::uint8_t>(parent_key.data(), parent_key.size()));
  h.update(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(label.data()),
                                         label.size()));
  return Prng(h.finish());
}

}  // namespace dblind::mpz
