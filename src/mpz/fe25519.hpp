// Field arithmetic over GF(2^255 - 19) on 5 radix-2^51 limbs.
//
// This is the scalar (CPU) field layer under the Ristretto-style EC group
// backend (group/ristretto.hpp). Representation and reduction strategy follow
// the classic curve25519 "donna-c64" shape: limbs are unsigned 64-bit values
// nominally < 2^51, products go through unsigned __int128, and carries fold
// the 2^255 overflow back in via * 19. Operations are constant-length (no
// secret-dependent branches or table indices at this layer).
//
// Instrumentation: every mul/square bumps a thread-local counter
// (fe_mul_count()) so the group backend can attribute deterministic op costs
// to protocol phases the same way MontgomeryCtx::mul_count() does for mod-p —
// one atomic flush per group op, not per field mul.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace dblind::mpz {

// Thread-local count of field multiplications (squares included) performed by
// this thread since thread start. The EC group backend snapshots it around
// each group operation and flushes the delta into its shared atomic counter.
std::uint64_t& fe_mul_count();

struct Fe25519 {
  // Limbs in radix 2^51: value = sum l[i] * 2^(51*i), each l[i] < 2^52 when
  // reduced (< 2^55 transiently between additions).
  std::array<std::uint64_t, 5> l{0, 0, 0, 0, 0};

  static Fe25519 zero() { return Fe25519{}; }
  static Fe25519 one() { return Fe25519{{1, 0, 0, 0, 0}}; }
};

// r = a + b (no reduction beyond limb headroom; inputs must be reduced).
Fe25519 fe_add(const Fe25519& a, const Fe25519& b);
// r = a - b (adds 2p first so limbs stay nonnegative).
Fe25519 fe_sub(const Fe25519& a, const Fe25519& b);
// r = -a.
Fe25519 fe_neg(const Fe25519& a);
// r = a * b, carried back below 2^52 per limb.
Fe25519 fe_mul(const Fe25519& a, const Fe25519& b);
// r = a^2.
Fe25519 fe_sq(const Fe25519& a);
// r = 2 * a^2.
Fe25519 fe_sq2(const Fe25519& a);
// r = a * k for small k.
Fe25519 fe_mul_small(const Fe25519& a, std::uint64_t k);
// r = a^-1 (a^(p-2) by Fermat; a must be nonzero — returns 0 for 0).
Fe25519 fe_invert(const Fe25519& a);
// r = a^((p-5)/8) — the core of the combined sqrt/inverse-sqrt ladder.
Fe25519 fe_pow22523(const Fe25519& a);

// Canonical little-endian 32-byte encoding (value fully reduced < p, high bit
// of byte 31 clear).
void fe_to_bytes(std::span<std::uint8_t, 32> out, const Fe25519& a);
// Decode 32 little-endian bytes; the top bit of byte 31 is ignored (callers
// that require canonicality must compare a re-encoding). Value is reduced.
Fe25519 fe_from_bytes(std::span<const std::uint8_t, 32> in);

// True iff a == 0 (after full reduction).
bool fe_is_zero(const Fe25519& a);
// "Negative" per RFC 9496 / Ed25519 convention: the low bit of the canonical
// encoding.
bool fe_is_negative(const Fe25519& a);
// True iff a == b as field elements.
bool fe_eq(const Fe25519& a, const Fe25519& b);
// Constant-time conditional move: a = b when flag, untouched otherwise.
void fe_cmov(Fe25519& a, const Fe25519& b, bool flag);
// |a|: a if nonnegative else -a.
Fe25519 fe_abs(const Fe25519& a);

// (was_square, r) with r = sqrt(u/v) (or sqrt(i*u/v) when u/v is non-square),
// r nonnegative. The workhorse of Ristretto decode/encode (RFC 9496 §4.2).
struct SqrtRatioResult {
  bool was_square = false;
  Fe25519 root;
};
SqrtRatioResult fe_sqrt_ratio_m1(const Fe25519& u, const Fe25519& v);

}  // namespace dblind::mpz
