#include "mpz/bigint.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace dblind::mpz {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr std::size_t kKaratsubaThreshold = 32;  // limbs

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Bigint::Bigint(std::int64_t v) {
  if (v == 0) return;
  sign_ = v < 0 ? -1 : 1;
  // Careful with INT64_MIN: negate in unsigned space.
  u64 mag = v < 0 ? ~static_cast<u64>(v) + 1 : static_cast<u64>(v);
  limbs_.push_back(mag);
}

Bigint::Bigint(std::uint64_t v) {
  if (v == 0) return;
  sign_ = 1;
  limbs_.push_back(v);
}

void Bigint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) sign_ = 0;
}

Bigint Bigint::from_limbs(std::vector<std::uint64_t> limbs, int sign) {
  Bigint r;
  r.limbs_ = std::move(limbs);
  r.sign_ = sign;
  r.trim();
  return r;
}

Bigint Bigint::from_hex(std::string_view s) {
  bool neg = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    neg = s[0] == '-';
    s.remove_prefix(1);
  }
  if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) s.remove_prefix(2);
  if (s.empty()) throw std::invalid_argument("Bigint::from_hex: empty input");
  Bigint r;
  std::size_t nlimbs = (s.size() + 15) / 16;
  r.limbs_.assign(nlimbs, 0);
  // Fill limbs from the least-significant end of the string.
  std::size_t pos = s.size();
  for (std::size_t li = 0; li < nlimbs; ++li) {
    std::size_t take = std::min<std::size_t>(16, pos);
    u64 limb = 0;
    for (std::size_t i = pos - take; i < pos; ++i) {
      int d = hex_digit(s[i]);
      if (d < 0) throw std::invalid_argument("Bigint::from_hex: bad digit");
      limb = (limb << 4) | static_cast<u64>(d);
    }
    r.limbs_[li] = limb;
    pos -= take;
  }
  r.sign_ = neg ? -1 : 1;
  r.trim();
  return r;
}

Bigint Bigint::from_dec(std::string_view s) {
  bool neg = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    neg = s[0] == '-';
    s.remove_prefix(1);
  }
  if (s.empty()) throw std::invalid_argument("Bigint::from_dec: empty input");
  Bigint r;
  // Process 19 decimal digits (< 2^63) at a time: r = r*10^k + chunk.
  std::size_t i = 0;
  while (i < s.size()) {
    std::size_t take = std::min<std::size_t>(19, s.size() - i);
    u64 chunk = 0;
    u64 scale = 1;
    for (std::size_t j = 0; j < take; ++j) {
      char c = s[i + j];
      if (c < '0' || c > '9') throw std::invalid_argument("Bigint::from_dec: bad digit");
      chunk = chunk * 10 + static_cast<u64>(c - '0');
      scale *= 10;
    }
    r = r * Bigint(scale) + Bigint(chunk);
    i += take;
  }
  if (neg && !r.is_zero()) r.sign_ = -1;
  return r;
}

Bigint Bigint::from_bytes_be(std::span<const std::uint8_t> bytes) {
  Bigint r;
  std::size_t nlimbs = (bytes.size() + 7) / 8;
  r.limbs_.assign(nlimbs, 0);
  std::size_t pos = bytes.size();
  for (std::size_t li = 0; li < nlimbs; ++li) {
    std::size_t take = std::min<std::size_t>(8, pos);
    u64 limb = 0;
    for (std::size_t i = pos - take; i < pos; ++i) limb = (limb << 8) | bytes[i];
    r.limbs_[li] = limb;
    pos -= take;
  }
  r.sign_ = 1;
  r.trim();
  return r;
}

std::string Bigint::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  if (sign_ < 0) out.push_back('-');
  bool leading = true;
  for (std::size_t li = limbs_.size(); li-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      unsigned d = static_cast<unsigned>((limbs_[li] >> shift) & 0xF);
      if (leading && d == 0) continue;
      leading = false;
      out.push_back(kDigits[d]);
    }
  }
  return out;
}

std::string Bigint::to_dec() const {
  if (is_zero()) return "0";
  Bigint v = abs();
  const Bigint chunk_div(static_cast<u64>(10'000'000'000'000'000'000ULL));  // 10^19
  std::string out;
  while (!v.is_zero()) {
    Bigint q, r;
    divmod(v, chunk_div, q, r);
    u64 part = r.is_zero() ? 0 : r.limbs_[0];
    for (int i = 0; i < 19; ++i) {
      out.push_back(static_cast<char>('0' + part % 10));
      part /= 10;
    }
    v = std::move(q);
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  if (sign_ < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<std::uint8_t> Bigint::to_bytes_be(std::size_t min_len) const {
  std::size_t need = (bit_length() + 7) / 8;
  if (min_len != 0 && need > min_len)
    throw std::length_error("Bigint::to_bytes_be: value does not fit min_len");
  std::size_t len = std::max(need, min_len);
  if (len == 0) len = 1;
  std::vector<std::uint8_t> out(len, 0);
  for (std::size_t i = 0; i < need; ++i) {
    u64 limb = limbs_[i / 8];
    out[len - 1 - i] = static_cast<std::uint8_t>(limb >> (8 * (i % 8)));
  }
  return out;
}

std::size_t Bigint::bit_length() const {
  if (is_zero()) return 0;
  return (limbs_.size() - 1) * 64 + (64 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool Bigint::bit(std::size_t i) const {
  std::size_t li = i / 64;
  if (li >= limbs_.size()) return false;
  return (limbs_[li] >> (i % 64)) & 1u;
}

Bigint Bigint::abs() const {
  Bigint r = *this;
  if (r.sign_ < 0) r.sign_ = 1;
  return r;
}

Bigint Bigint::negated() const {
  Bigint r = *this;
  r.sign_ = -r.sign_;
  return r;
}

std::uint64_t Bigint::to_u64() const {
  if (sign_ < 0 || limbs_.size() > 1) throw std::overflow_error("Bigint::to_u64: out of range");
  return limbs_.empty() ? 0 : limbs_[0];
}

std::strong_ordering Bigint::cmp_mag(const Bigint& a, const Bigint& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() <=> b.limbs_.size();
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
  }
  return std::strong_ordering::equal;
}

std::strong_ordering operator<=>(const Bigint& a, const Bigint& b) {
  if (a.sign_ != b.sign_) return a.sign_ <=> b.sign_;
  auto mag = Bigint::cmp_mag(a, b);
  return a.sign_ >= 0 ? mag : (0 <=> mag);
}

std::vector<std::uint64_t> Bigint::add_mag(std::span<const std::uint64_t> a,
                                           std::span<const std::uint64_t> b) {
  if (a.size() < b.size()) std::swap(a, b);
  std::vector<u64> out(a.size() + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    u128 s = static_cast<u128>(a[i]) + (i < b.size() ? b[i] : 0) + carry;
    out[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  out[a.size()] = carry;
  return out;
}

std::vector<std::uint64_t> Bigint::sub_mag(std::span<const std::uint64_t> a,
                                           std::span<const std::uint64_t> b) {
  assert(a.size() >= b.size());
  std::vector<u64> out(a.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    u64 bi = i < b.size() ? b[i] : 0;
    u64 ai = a[i];
    u64 d = ai - bi - borrow;
    borrow = (ai < bi || (ai == bi && borrow)) ? 1 : 0;
    out[i] = d;
  }
  assert(borrow == 0);
  return out;
}

namespace {

// out += a * b, where out has room for a.size()+b.size() limbs at `offset`.
void mul_schoolbook_acc(std::span<u64> out, std::span<const u64> a, std::span<const u64> b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    u64 carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      u128 cur = static_cast<u128>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      u128 cur = static_cast<u128>(out[k]) + carry;
      out[k] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
      ++k;
    }
  }
}

std::vector<u64> mul_karatsuba(std::span<const u64> a, std::span<const u64> b);

std::vector<u64> mul_any(std::span<const u64> a, std::span<const u64> b) {
  if (a.empty() || b.empty()) return {};
  if (std::min(a.size(), b.size()) < kKaratsubaThreshold) {
    std::vector<u64> out(a.size() + b.size(), 0);
    mul_schoolbook_acc(out, a, b);
    return out;
  }
  return mul_karatsuba(a, b);
}

// Adds `b` into `a` starting at limb offset `off`; `a` must be large enough.
void add_into(std::vector<u64>& a, std::span<const u64> b, std::size_t off) {
  u64 carry = 0;
  std::size_t i = 0;
  for (; i < b.size(); ++i) {
    u128 s = static_cast<u128>(a[off + i]) + b[i] + carry;
    a[off + i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  while (carry != 0) {
    u128 s = static_cast<u128>(a[off + i]) + carry;
    a[off + i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
    ++i;
  }
}

// Subtracts `b` from `a` starting at limb offset `off`; requires no final borrow.
void sub_into(std::vector<u64>& a, std::span<const u64> b, std::size_t off) {
  u64 borrow = 0;
  std::size_t i = 0;
  for (; i < b.size(); ++i) {
    u64 ai = a[off + i];
    u64 bi = b[i];
    u64 d = ai - bi - borrow;
    borrow = (ai < bi || (ai == bi && borrow)) ? 1 : 0;
    a[off + i] = d;
  }
  while (borrow != 0) {
    u64 ai = a[off + i];
    a[off + i] = ai - 1;
    borrow = ai == 0 ? 1 : 0;
    ++i;
  }
}

std::vector<u64> add_mag_local(std::span<const u64> a, std::span<const u64> b) {
  if (a.size() < b.size()) std::swap(a, b);
  std::vector<u64> out(a.size() + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    u128 s = static_cast<u128>(a[i]) + (i < b.size() ? b[i] : 0) + carry;
    out[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  out[a.size()] = carry;
  return out;
}

std::vector<u64> mul_karatsuba(std::span<const u64> a, std::span<const u64> b) {
  std::size_t half = (std::max(a.size(), b.size()) + 1) / 2;
  auto lo = [&](std::span<const u64> x) { return x.subspan(0, std::min(half, x.size())); };
  auto hi = [&](std::span<const u64> x) {
    return x.size() > half ? x.subspan(half) : std::span<const u64>{};
  };
  // Trim leading zero limbs so recursion terminates and stays balanced.
  auto trimmed = [](std::span<const u64> x) {
    while (!x.empty() && x.back() == 0) x = x.subspan(0, x.size() - 1);
    return x;
  };

  std::span<const u64> a0 = trimmed(lo(a)), a1 = trimmed(hi(a));
  std::span<const u64> b0 = trimmed(lo(b)), b1 = trimmed(hi(b));

  std::vector<u64> z0 = mul_any(a0, b0);
  std::vector<u64> z2 = mul_any(a1, b1);

  std::vector<u64> sa = add_mag_local(a0, a1);
  std::vector<u64> sb = add_mag_local(b0, b1);
  while (!sa.empty() && sa.back() == 0) sa.pop_back();
  while (!sb.empty() && sb.back() == 0) sb.pop_back();
  std::vector<u64> z1 = mul_any(sa, sb);  // z1 = (a0+a1)(b0+b1)
  // z1 -= z0 + z2
  while (z1.size() < std::max(z0.size(), z2.size())) z1.push_back(0);
  sub_into(z1, z0, 0);
  sub_into(z1, z2, 0);

  // Trim trailing zero limbs so the shifted adds stay within `out`: the
  // *values* fit (z1*B^half <= a*b), even when the raw vectors are longer.
  auto shrink = [](std::vector<u64>& x) {
    while (!x.empty() && x.back() == 0) x.pop_back();
  };
  shrink(z0);
  shrink(z1);
  shrink(z2);

  std::vector<u64> out(a.size() + b.size() + 1, 0);
  add_into(out, z0, 0);
  add_into(out, z1, half);
  add_into(out, z2, 2 * half);
  return out;
}

}  // namespace

std::vector<std::uint64_t> Bigint::mul_mag(std::span<const std::uint64_t> a,
                                           std::span<const std::uint64_t> b) {
  return mul_any(a, b);
}

Bigint operator+(const Bigint& a, const Bigint& b) {
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;
  if (a.sign_ == b.sign_)
    return Bigint::from_limbs(Bigint::add_mag(a.limbs_, b.limbs_), a.sign_);
  auto c = Bigint::cmp_mag(a, b);
  if (c == std::strong_ordering::equal) return Bigint{};
  if (c > 0) return Bigint::from_limbs(Bigint::sub_mag(a.limbs_, b.limbs_), a.sign_);
  return Bigint::from_limbs(Bigint::sub_mag(b.limbs_, a.limbs_), b.sign_);
}

Bigint operator-(const Bigint& a, const Bigint& b) { return a + b.negated(); }

Bigint operator*(const Bigint& a, const Bigint& b) {
  if (a.is_zero() || b.is_zero()) return Bigint{};
  return Bigint::from_limbs(Bigint::mul_mag(a.limbs_, b.limbs_), a.sign_ * b.sign_);
}

namespace {

// Divides magnitude `u` by single limb `d`; returns quotient limbs, sets `rem`.
std::vector<u64> div_by_limb(std::span<const u64> u, u64 d, u64& rem) {
  std::vector<u64> q(u.size(), 0);
  u128 r = 0;
  for (std::size_t i = u.size(); i-- > 0;) {
    u128 cur = (r << 64) | u[i];
    q[i] = static_cast<u64>(cur / d);
    r = cur % d;
  }
  rem = static_cast<u64>(r);
  return q;
}

}  // namespace

void Bigint::divmod_mag(const Bigint& a, const Bigint& b, Bigint& quot, Bigint& rem) {
  // |a| / |b| with |b| != 0; results are non-negative magnitudes.
  auto c = cmp_mag(a, b);
  if (c < 0) {
    quot = Bigint{};
    rem = a.abs();
    return;
  }
  if (b.limbs_.size() == 1) {
    u64 r = 0;
    auto q = div_by_limb(a.limbs_, b.limbs_[0], r);
    quot = from_limbs(std::move(q), 1);
    rem = Bigint(r);
    return;
  }

  // Knuth Algorithm D (TAOCP 4.3.1). Normalize so divisor's top bit is set.
  const int shift = std::countl_zero(b.limbs_.back());
  Bigint u = a.abs().shl(static_cast<std::size_t>(shift));
  Bigint v = b.abs().shl(static_cast<std::size_t>(shift));
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() >= n ? u.limbs_.size() - n : 0;

  std::vector<u64> un = u.limbs_;
  un.push_back(0);  // u has m+n+1 limbs
  const std::vector<u64>& vn = v.limbs_;
  std::vector<u64> q(m + 1, 0);

  const u64 v1 = vn[n - 1];
  const u64 v2 = vn[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q̂ = floor((un[j+n]*B + un[j+n-1]) / v1), then refine.
    u128 num = (static_cast<u128>(un[j + n]) << 64) | un[j + n - 1];
    u128 qhat = num / v1;
    u128 rhat = num % v1;
    while (qhat >= (static_cast<u128>(1) << 64) ||
           qhat * v2 > ((rhat << 64) | un[j + n - 2])) {
      --qhat;
      rhat += v1;
      if (rhat >= (static_cast<u128>(1) << 64)) break;
    }
    // Multiply-subtract: un[j..j+n] -= qhat * vn.
    u64 borrow = 0;
    u64 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      u128 p = static_cast<u128>(static_cast<u64>(qhat)) * vn[i] + carry;
      carry = static_cast<u64>(p >> 64);
      u64 plo = static_cast<u64>(p);
      u64 ui = un[i + j];
      u64 d = ui - plo - borrow;
      borrow = (ui < plo || (ui == plo && borrow)) ? 1 : 0;
      un[i + j] = d;
    }
    {
      u64 ui = un[j + n];
      u64 d = ui - carry - borrow;
      borrow = (ui < carry || (ui == carry && borrow)) ? 1 : 0;
      un[j + n] = d;
    }
    u64 qj = static_cast<u64>(qhat);
    if (borrow != 0) {
      // q̂ was one too large: add back.
      --qj;
      u64 c2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u128 s = static_cast<u128>(un[i + j]) + vn[i] + c2;
        un[i + j] = static_cast<u64>(s);
        c2 = static_cast<u64>(s >> 64);
      }
      un[j + n] += c2;
    }
    q[j] = qj;
  }

  quot = from_limbs(std::move(q), 1);
  un.resize(n);
  rem = from_limbs(std::move(un), 1).shr(static_cast<std::size_t>(shift));
}

void Bigint::divmod(const Bigint& a, const Bigint& b, Bigint& quot, Bigint& rem) {
  if (b.is_zero()) throw std::domain_error("Bigint: division by zero");
  Bigint q, r;
  divmod_mag(a, b, q, r);
  // Truncated semantics: sign(q) = sign(a)*sign(b); sign(r) = sign(a).
  if (!q.is_zero()) q.sign_ = a.sign_ * b.sign_;
  if (!r.is_zero()) r.sign_ = a.sign_;
  quot = std::move(q);
  rem = std::move(r);
}

Bigint operator/(const Bigint& a, const Bigint& b) {
  Bigint q, r;
  Bigint::divmod(a, b, q, r);
  return q;
}

Bigint operator%(const Bigint& a, const Bigint& b) {
  Bigint q, r;
  Bigint::divmod(a, b, q, r);
  return r;
}

Bigint Bigint::shl(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  std::size_t limb_shift = bits / 64;
  std::size_t bit_shift = bits % 64;
  std::vector<u64> out(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) out[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  return from_limbs(std::move(out), sign_);
}

Bigint Bigint::shr(std::size_t bits) const {
  if (is_zero()) return *this;
  std::size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) return Bigint{};
  std::size_t bit_shift = bits % 64;
  std::vector<u64> out(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size())
      out[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
  }
  return from_limbs(std::move(out), sign_);
}

}  // namespace dblind::mpz
