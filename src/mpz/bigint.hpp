// Arbitrary-precision signed integers.
//
// This is the arithmetic substrate for the whole library: ElGamal, the
// zero-knowledge proofs and the threshold schemes all compute over Z_p / Z_q
// with p up to a few thousand bits. Limbs are 64-bit, little-endian;
// multiplication switches to Karatsuba above a threshold and division is
// Knuth's Algorithm D. The representation invariant is: no trailing zero
// limbs, and `sign == 0` iff the limb vector is empty.
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dblind::mpz {

class Bigint {
 public:
  Bigint() = default;
  Bigint(std::int64_t v);   // NOLINT(google-explicit-constructor) numeric literal convenience
  Bigint(std::uint64_t v);  // NOLINT(google-explicit-constructor)
  Bigint(int v) : Bigint(static_cast<std::int64_t>(v)) {}  // NOLINT

  // Parses "[-]hex digits". Throws std::invalid_argument on bad input.
  static Bigint from_hex(std::string_view s);
  // Parses "[-]decimal digits". Throws std::invalid_argument on bad input.
  static Bigint from_dec(std::string_view s);
  // Big-endian unsigned bytes -> non-negative integer.
  static Bigint from_bytes_be(std::span<const std::uint8_t> bytes);

  [[nodiscard]] std::string to_hex() const;  // lowercase, no leading zeros, "-" prefix if negative
  [[nodiscard]] std::string to_dec() const;
  // Magnitude as big-endian bytes, zero-padded on the left to `min_len`.
  // Throws std::length_error if the value needs more than `min_len` bytes and
  // min_len != 0.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes_be(std::size_t min_len = 0) const;

  [[nodiscard]] bool is_zero() const { return sign_ == 0; }
  [[nodiscard]] bool is_negative() const { return sign_ < 0; }
  [[nodiscard]] bool is_odd() const { return sign_ != 0 && (limbs_[0] & 1u) != 0; }
  [[nodiscard]] bool is_even() const { return !is_odd(); }
  [[nodiscard]] int sign() const { return sign_; }

  // Number of significant bits of the magnitude (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;
  // Bit `i` of the magnitude (false beyond bit_length()).
  [[nodiscard]] bool bit(std::size_t i) const;

  [[nodiscard]] Bigint abs() const;
  [[nodiscard]] Bigint negated() const;

  // Value as uint64_t; precondition: 0 <= *this < 2^64 (checked, throws
  // std::overflow_error otherwise).
  [[nodiscard]] std::uint64_t to_u64() const;

  friend Bigint operator+(const Bigint& a, const Bigint& b);
  friend Bigint operator-(const Bigint& a, const Bigint& b);
  friend Bigint operator*(const Bigint& a, const Bigint& b);
  // Truncated division (C++ semantics: quotient rounds toward zero,
  // remainder has the sign of the dividend). Throws std::domain_error on
  // division by zero.
  friend Bigint operator/(const Bigint& a, const Bigint& b);
  friend Bigint operator%(const Bigint& a, const Bigint& b);

  Bigint& operator+=(const Bigint& b) { return *this = *this + b; }
  Bigint& operator-=(const Bigint& b) { return *this = *this - b; }
  Bigint& operator*=(const Bigint& b) { return *this = *this * b; }
  Bigint& operator/=(const Bigint& b) { return *this = *this / b; }
  Bigint& operator%=(const Bigint& b) { return *this = *this % b; }

  // Computes quotient and remainder in one pass.
  static void divmod(const Bigint& a, const Bigint& b, Bigint& quot, Bigint& rem);

  [[nodiscard]] Bigint shl(std::size_t bits) const;
  [[nodiscard]] Bigint shr(std::size_t bits) const;
  friend Bigint operator<<(const Bigint& a, std::size_t n) { return a.shl(n); }
  friend Bigint operator>>(const Bigint& a, std::size_t n) { return a.shr(n); }

  friend bool operator==(const Bigint& a, const Bigint& b) = default;
  friend std::strong_ordering operator<=>(const Bigint& a, const Bigint& b);

  // Access to limbs for low-level algorithms (Montgomery, hashing).
  [[nodiscard]] std::span<const std::uint64_t> limbs() const { return limbs_; }

 private:
  friend class MontgomeryCtx;

  void trim();
  static Bigint from_limbs(std::vector<std::uint64_t> limbs, int sign);

  // |a| vs |b|
  static std::strong_ordering cmp_mag(const Bigint& a, const Bigint& b);
  // |a| + |b|
  static std::vector<std::uint64_t> add_mag(std::span<const std::uint64_t> a,
                                            std::span<const std::uint64_t> b);
  // |a| - |b|, requires |a| >= |b|
  static std::vector<std::uint64_t> sub_mag(std::span<const std::uint64_t> a,
                                            std::span<const std::uint64_t> b);
  static std::vector<std::uint64_t> mul_mag(std::span<const std::uint64_t> a,
                                            std::span<const std::uint64_t> b);
  static void divmod_mag(const Bigint& a, const Bigint& b, Bigint& quot, Bigint& rem);

  int sign_ = 0;                      // -1, 0, +1
  std::vector<std::uint64_t> limbs_;  // little-endian; empty iff sign_ == 0
};

}  // namespace dblind::mpz
