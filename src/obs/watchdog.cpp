#include "obs/watchdog.hpp"

namespace dblind::obs {

void Watchdog::arm(std::uint64_t transfer, std::uint64_t now) {
  if (!enabled()) return;
  entries_.try_emplace(transfer, Entry{now, 0, 0, false});
}

std::optional<Watchdog::Resolution> Watchdog::progress(std::uint64_t transfer,
                                                       std::uint64_t now,
                                                       std::uint64_t span) {
  if (!enabled()) return std::nullopt;
  auto [it, fresh] = entries_.try_emplace(transfer, Entry{now, span, 0, false});
  Entry& e = it->second;
  e.last_activity = now;
  if (span != 0) e.last_span = span;
  if (fresh || !e.stalled) return std::nullopt;
  e.stalled = false;
  return Resolution{transfer, now - e.stalled_at};
}

std::optional<Watchdog::Resolution> Watchdog::complete(std::uint64_t transfer,
                                                       std::uint64_t now) {
  if (!enabled()) return std::nullopt;
  auto it = entries_.find(transfer);
  if (it == entries_.end()) return std::nullopt;
  std::optional<Resolution> out;
  if (it->second.stalled) out = Resolution{transfer, now - it->second.stalled_at};
  entries_.erase(it);
  return out;
}

void Watchdog::disarm(std::uint64_t transfer) { entries_.erase(transfer); }

std::vector<Watchdog::Stall> Watchdog::expired(std::uint64_t now) {
  std::vector<Stall> out;
  if (!enabled()) return out;
  for (auto& [transfer, e] : entries_) {
    if (e.stalled || now < e.last_activity + deadline_) continue;
    e.stalled = true;
    e.stalled_at = now;
    out.push_back(Stall{transfer, e.last_span});
  }
  return out;
}

bool Watchdog::needs_sweep() const {
  if (!enabled()) return false;
  for (const auto& [transfer, e] : entries_) {
    if (!e.stalled) return true;
  }
  return false;
}

std::size_t Watchdog::stalled_count() const {
  std::size_t n = 0;
  for (const auto& [transfer, e] : entries_) {
    if (e.stalled) ++n;
  }
  return n;
}

}  // namespace dblind::obs
