// Metrics registry: named counters, gauges and histograms for the Fig. 4
// pipeline, with a Prometheus-style text dump.
//
// Design constraints (see docs/OBSERVABILITY.md):
//   * Zero dependencies: standard library only.
//   * Branch-free hot path when no registry is installed. Counter, Gauge
//     and Histogram are thin handles over an atomic cell; a
//     default-constructed handle points at a process-wide discard cell, so
//     an update is always a single unconditional relaxed atomic op — never
//     an "is a registry installed?" branch. This is what keeps default
//     builds byte-identical in cost to the seed (asserted by the
//     obs-overhead section of bench_fig4_full).
//   * Thread safe: registration takes a mutex; updates are lock-free and
//     safe from concurrent verify-pool workers (TSan-covered).
//   * No metric value, label or name may carry cryptographic material;
//     lint_crypto.py's trace-hygiene rule enforces this for src/obs/ and
//     for every emit_*/record_* call site.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/sync.hpp"

namespace dblind::obs {

namespace detail {

// Process-wide discard cell backing default-constructed scalar handles.
std::atomic<std::uint64_t>& discard_cell();

// Backing storage for one histogram time series. `bounds` are inclusive
// upper bucket bounds in ascending order; `buckets` has one extra slot for
// the implicit +Inf bucket.
struct HistogramCell {
  std::vector<std::uint64_t> bounds;
  std::vector<std::atomic<std::uint64_t>> buckets;
  std::atomic<std::uint64_t> total{0};
  std::atomic<std::uint64_t> count{0};

  explicit HistogramCell(std::vector<std::uint64_t> b)
      : bounds(std::move(b)), buckets(bounds.size() + 1) {}
};

// Process-wide discard cell backing default-constructed Histogram handles
// (empty bounds: one +Inf bucket, so observe() stays branch-light).
HistogramCell& discard_histogram();

}  // namespace detail

// Monotonically increasing counter handle. Default-constructed handles
// discard updates (into the process-wide cell) without branching.
class Counter {
 public:
  Counter() : cell_(&detail::discard_cell()) {}
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}

  void inc(std::uint64_t by = 1) const {
    cell_->fetch_add(by, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return cell_->load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t>* cell_;
};

// Last-value gauge handle (same storage model as Counter).
class Gauge {
 public:
  Gauge() : cell_(&detail::discard_cell()) {}
  explicit Gauge(std::atomic<std::uint64_t>* cell) : cell_(cell) {}

  void set(std::uint64_t v) const {
    cell_->store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return cell_->load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t>* cell_;
};

// Histogram handle over fixed integer bucket bounds.
class Histogram {
 public:
  Histogram() : cell_(&detail::discard_histogram()) {}
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}

  void observe(std::uint64_t v) const {
    std::size_t i = 0;
    const std::size_t n = cell_->bounds.size();
    while (i < n && v > cell_->bounds[i]) ++i;
    cell_->buckets[i].fetch_add(1, std::memory_order_relaxed);
    cell_->total.fetch_add(v, std::memory_order_relaxed);
    cell_->count.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return cell_->count.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total() const {
    return cell_->total.load(std::memory_order_relaxed);
  }

 private:
  detail::HistogramCell* cell_;
};

// Label set attached to one time series, e.g. {{"node", "3"}, {"type",
// "commit"}}. Kept sorted by the registry for a canonical dump order.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

// Owner of all time series for one run. Handles returned by
// counter()/gauge()/histogram() stay valid for the registry's lifetime;
// repeated calls with the same (name, labels) return a handle to the same
// cell, which is what makes metric resolution idempotent across server
// crash/restore cycles.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- label-cardinality guard ----------------------------------------------
  // Upper bound on DISTINCT label sets per metric family (family = metric
  // name). A buggy or adversarial label source (say, a transfer id leaking
  // into a label) would otherwise grow the registry — and every scrape —
  // without bound. Registration past the cap hands back a discard handle and
  // increments `dblind_metrics_dropped_labels_total`, which self-registers on
  // first drop so the loss is visible in every exposition. The default is
  // far above the per-node×per-type fan-out the protocol registers.
  static constexpr std::size_t kDefaultMaxSeriesPerFamily = 1024;
  inline static const std::string kDroppedLabelsMetric =
      "dblind_metrics_dropped_labels_total";
  // 0 = unlimited. Takes effect for future registrations only.
  void set_max_series_per_family(std::size_t cap) EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t dropped_labels() const {
    return dropped_labels_.load(std::memory_order_relaxed);
  }

  Counter counter(const std::string& name, const LabelSet& labels = {}) EXCLUDES(mu_);
  Gauge gauge(const std::string& name, const LabelSet& labels = {}) EXCLUDES(mu_);
  Histogram histogram(const std::string& name, const LabelSet& labels,
                      std::vector<std::uint64_t> bounds) EXCLUDES(mu_);

  // Expose an externally owned cell (e.g. ProtocolServer's retransmit
  // counter or MontgomeryCtx's mul counter) as a read-only time series.
  // The cell must outlive the registry. Idempotent per (name, labels).
  void attach_counter(const std::string& name, const LabelSet& labels,
                      const std::atomic<std::uint64_t>* cell) EXCLUDES(mu_);

  struct ScalarSample {
    std::string name;
    LabelSet labels;
    std::uint64_t value = 0;
    bool is_gauge = false;
  };
  struct HistogramSample {
    std::string name;
    LabelSet labels;
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t total = 0;
    std::uint64_t count = 0;
  };

  // Point-in-time snapshots, sorted by (name, labels). Used by the bench
  // harness to extract per-phase breakdowns without parsing text.
  [[nodiscard]] std::vector<ScalarSample> scalar_samples() const EXCLUDES(mu_);
  [[nodiscard]] std::vector<HistogramSample> histogram_samples() const EXCLUDES(mu_);

  // Prometheus text exposition format (sorted, deterministic for a
  // deterministic run under the Simulator).
  [[nodiscard]] std::string prometheus_text() const EXCLUDES(mu_);

 private:
  struct ScalarSeries {
    LabelSet labels;
    std::unique_ptr<std::atomic<std::uint64_t>> owned;
    const std::atomic<std::uint64_t>* cell = nullptr;  // owned.get() or attached
    bool is_gauge = false;
  };
  struct HistogramSeries {
    LabelSet labels;
    std::unique_ptr<detail::HistogramCell> cell;
  };

  using SeriesKey = std::pair<std::string, std::string>;  // (name, label text)

  std::atomic<std::uint64_t>* scalar_cell(const std::string& name,
                                          const LabelSet& labels,
                                          bool is_gauge) EXCLUDES(mu_);
  // Charges one new series to `name`'s family; false (and a drop count) past
  // the cap. The drop counter itself registers outside the cap.
  bool admit_series(const std::string& name) REQUIRES(mu_);

  // mu_ guards series *registration* (the maps). The cells themselves are
  // atomics updated lock-free through handles — see docs/STATIC_ANALYSIS.md
  // for the guarded-vs-atomic policy.
  mutable Mutex mu_;
  std::map<SeriesKey, ScalarSeries> scalars_ GUARDED_BY(mu_);
  std::map<SeriesKey, HistogramSeries> histograms_ GUARDED_BY(mu_);
  // Cardinality guard state. dropped_labels_ is atomic (exposed as an
  // attached series, read lock-free by scrapes); the bookkeeping maps live
  // under mu_ with the registration path they protect.
  std::size_t max_series_per_family_ GUARDED_BY(mu_) = kDefaultMaxSeriesPerFamily;
  std::map<std::string, std::size_t> family_sizes_ GUARDED_BY(mu_);
  bool drop_series_registered_ GUARDED_BY(mu_) = false;
  std::atomic<std::uint64_t> dropped_labels_{0};
};

// Canonical `{k="v",...}` rendering of a label set (empty string for no
// labels); exposed for tests and for the registry's internal keying.
std::string label_text(const LabelSet& labels);

// Samples a source cell at construction and adds the delta to `dst` at
// destruction. Used to attribute mont-mul counts to a protocol phase:
//   { ScopedCounterDelta d(group.mont_mul_cell(), per_phase_counter); ... }
class ScopedCounterDelta {
 public:
  ScopedCounterDelta(const std::atomic<std::uint64_t>* src, Counter dst)
      : src_(src), dst_(dst),
        begin_(src != nullptr ? src->load(std::memory_order_relaxed) : 0) {}
  ScopedCounterDelta(const ScopedCounterDelta&) = delete;
  ScopedCounterDelta& operator=(const ScopedCounterDelta&) = delete;
  ~ScopedCounterDelta() {
    if (src_ != nullptr) {
      dst_.inc(src_->load(std::memory_order_relaxed) - begin_);
    }
  }

 private:
  const std::atomic<std::uint64_t>* src_;
  Counter dst_;
  std::uint64_t begin_;
};

}  // namespace dblind::obs
