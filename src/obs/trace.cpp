#include "obs/trace.hpp"

#include <ostream>

namespace dblind::obs {

const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kMsgSend: return "msg_send";
    case EventKind::kMsgRecv: return "msg_recv";
    case EventKind::kMsgDrop: return "msg_drop";
    case EventKind::kMsgDup: return "msg_dup";
    case EventKind::kMsgCorrupt: return "msg_corrupt";
    case EventKind::kCrash: return "crash";
    case EventKind::kRestart: return "restart";
    case EventKind::kEpochStart: return "epoch_start";
    case EventKind::kCommitSent: return "commit_sent";
    case EventKind::kCommitAccepted: return "commit_accepted";
    case EventKind::kRevealSent: return "reveal_sent";
    case EventKind::kContributeSent: return "contribute_sent";
    case EventKind::kVerifyPass: return "verify_pass";
    case EventKind::kVerifyFail: return "verify_fail";
    case EventKind::kBlindSignBegin: return "blind_sign_begin";
    case EventKind::kSignDone: return "sign_done";
    case EventKind::kDecryptBegin: return "decrypt_begin";
    case EventKind::kDecryptDone: return "decrypt_done";
    case EventKind::kDoneSignBegin: return "done_sign_begin";
    case EventKind::kDoneRecorded: return "done_recorded";
    case EventKind::kRetransmit: return "retransmit";
    case EventKind::kPoolRefill: return "pool_refill";
    case EventKind::kPoolDrain: return "pool_drain";
    case EventKind::kEpochInstall: return "epoch_install";
    case EventKind::kEpochAbort: return "epoch_abort";
    case EventKind::kEngineAdmit: return "engine_admit";
    case EventKind::kEngineDefer: return "engine_defer";
    case EventKind::kBatchDrain: return "batch_drain";
    case EventKind::kContributeCited: return "contribute_cited";
    case EventKind::kStall: return "stall";
    case EventKind::kStallResolved: return "stall_resolved";
  }
  return "unknown";
}

namespace {

void field(std::string& out, const char* key, std::uint64_t v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

}  // namespace

std::string to_jsonl(const TraceEvent& e) {
  std::string out = "{\"ts\":";
  out += std::to_string(e.ts);
  out += ",\"node\":";
  out += std::to_string(e.node);
  out += ",\"kind\":\"";
  out += kind_name(e.kind);
  out += "\"";
  // Span linkage: serialized only when present so span-less events (tracing
  // off, unit-test fixtures) render byte-identically to the v1 schema.
  if (e.span != 0) field(out, "span", e.span);
  if (e.parent != 0) field(out, "parent", e.parent);
  if (e.has_instance) {
    field(out, "transfer", e.transfer);
    field(out, "coord", e.coordinator);
    field(out, "epoch", e.epoch);
  } else if (e.transfer != 0) {
    field(out, "transfer", e.transfer);
  }
  // Config epoch: emitted only when nonzero so seed-epoch traces stay
  // byte-identical to pre-reconfiguration runs (pinned in obs_test).
  if (e.cfg_epoch != 0 && e.kind != EventKind::kEpochInstall &&
      e.kind != EventKind::kEpochAbort) {
    field(out, "cfg_epoch", e.cfg_epoch);
  }
  switch (e.kind) {
    case EventKind::kMsgSend:
    case EventKind::kMsgRecv:
    case EventKind::kMsgDrop:
    case EventKind::kMsgDup:
    case EventKind::kMsgCorrupt:
      field(out, "peer", e.peer);
      field(out, "bytes", e.count);
      break;
    case EventKind::kCommitAccepted:
      field(out, "from", e.peer);
      field(out, "count", e.count);
      break;
    case EventKind::kRevealSent:
    case EventKind::kBlindSignBegin:
    case EventKind::kDecryptDone:
      field(out, "count", e.count);
      break;
    case EventKind::kVerifyPass:
    case EventKind::kVerifyFail:
      field(out, "subject", e.subject);
      field(out, "peer", e.peer);
      break;
    case EventKind::kSignDone:
      field(out, "purpose", e.subject);
      break;
    case EventKind::kRetransmit:
      field(out, "key", e.peer);
      field(out, "frames", e.count);
      field(out, "attempt", e.attempt);
      field(out, "cap", e.cap);
      break;
    case EventKind::kPoolRefill:
      field(out, "bundle", e.peer);
      field(out, "depth", e.count);
      break;
    case EventKind::kPoolDrain:
      field(out, "bundle", e.peer);
      field(out, "depth", e.count);
      field(out, "fallback", e.subject);
      break;
    case EventKind::kEpochInstall:
      field(out, "cfg_epoch", e.cfg_epoch);
      field(out, "rank", e.peer);
      field(out, "n", e.count);
      break;
    case EventKind::kEpochAbort:
      field(out, "cfg_epoch", e.cfg_epoch);
      break;
    case EventKind::kEngineAdmit:
    case EventKind::kEngineDefer:
      field(out, "count", e.count);
      break;
    case EventKind::kBatchDrain:
      field(out, "msgs", e.count);
      field(out, "equations", e.peer);
      break;
    case EventKind::kContributeCited:
      field(out, "from", e.peer);
      field(out, "cited_transfer", e.count);
      break;
    case EventKind::kStall:
      field(out, "queue", e.count);
      field(out, "verifies", e.peer);
      field(out, "resends", e.attempt);
      break;
    case EventKind::kStallResolved:
      field(out, "stalled_us", e.count);
      break;
    default:
      break;
  }
  out += "}";
  return out;
}

std::string to_jsonl(const RunMeta& m) {
  std::string out = "{\"kind\":\"meta\"";
  field(out, "v", m.version);
  field(out, "run_seed", m.run_seed);
  field(out, "a_n", m.a_n);
  field(out, "a_f", m.a_f);
  field(out, "b_n", m.b_n);
  field(out, "b_f", m.b_f);
  field(out, "retransmit_cap", m.retransmit_cap);
  out += "}";
  return out;
}

void MemoryTraceRecorder::run_meta(const RunMeta& m) {
  MutexLock lock(mu_);
  meta_ = m;
}

void MemoryTraceRecorder::record(const TraceEvent& e) {
  MutexLock lock(mu_);
  events_.push_back(e);
}

RunMeta MemoryTraceRecorder::meta() const {
  MutexLock lock(mu_);
  return meta_;
}

std::vector<TraceEvent> MemoryTraceRecorder::events() const {
  MutexLock lock(mu_);
  return events_;
}

std::uint64_t MemoryTraceRecorder::count_of(EventKind k) const {
  MutexLock lock(mu_);
  std::uint64_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == k) ++n;
  }
  return n;
}

void JsonlTraceRecorder::run_meta(const RunMeta& m) {
  MutexLock lock(mu_);
  out_ << to_jsonl(m) << "\n";
}

void JsonlTraceRecorder::record(const TraceEvent& e) {
  MutexLock lock(mu_);
  out_ << to_jsonl(e) << "\n";
}

}  // namespace dblind::obs
