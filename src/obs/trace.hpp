// Structured tracing for the Fig. 4 pipeline.
//
// A TraceRecorder receives point events from the network layer (send, recv,
// drop, duplicate, corrupt, crash, restart) and from ProtocolServer
// (per-phase span edges: epoch start, commit, reveal, contribute, blind
// sign, threshold decrypt, done sign, done recorded; plus verify pass/fail
// with culprit ranks and retransmissions). Recorders are injected via
// ProtocolOptions::trace; a null pointer means no recording and no behavior
// change (the seed default).
//
// Events carry only public protocol coordinates — timestamps, ranks,
// transfer/epoch ids, message types, counts. They must never carry
// cryptographic material; lint_crypto.py's trace-hygiene rule rejects any
// emit_*/record_* call whose arguments look like secrets.
//
// Under the deterministic Simulator all timestamps are virtual
// microseconds, so two runs with the same seed produce byte-identical
// JSONL traces (asserted by tests/obs/obs_test.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/sync.hpp"

namespace dblind::obs {

enum class EventKind : std::uint8_t {
  // Network layer (Simulator / ThreadedBus).
  kMsgSend = 1,
  kMsgRecv,
  kMsgDrop,
  kMsgDup,
  kMsgCorrupt,
  kCrash,
  kRestart,
  // Fig. 4 phase edges (ProtocolServer).
  kEpochStart,      // coordinator opened instance (transfer, coord, epoch)
  kCommitSent,      // contributor committed to its blinding factor
  kCommitAccepted,  // coordinator accepted a commit (count = commits so far)
  kRevealSent,      // coordinator reached 2f+1 commits and broadcast reveal
  kContributeSent,  // contributor revealed + sent its VDE contribution
  kVerifyPass,      // a proof checked out (subject = msg type, peer = prover)
  kVerifyFail,      // a proof failed (peer = culprit rank)
  kBlindSignBegin,  // coordinator reached f+1 valid contributions
  kSignDone,        // a threshold-signing session finished (subject = purpose)
  kDecryptBegin,    // responder started threshold decryption
  kDecryptDone,     // responder reached f+1 valid decryption replies
  kDoneSignBegin,   // responder started the done signing session
  kDoneRecorded,    // a B server validated and stored the done message
  kRetransmit,      // backoff timer re-sent cached frames
  // Offline/online contribution pool (PR 5). Fields carry only the public
  // bundle id and pool depth — never ρ, nonces, or announcements.
  kPoolRefill,      // refill timer added a precomputed bundle (peer = bundle id)
  kPoolDrain,       // a bundle was consumed for an instance (subject = fallback)
  // Epochal reconfiguration (PR 7). cfg_epoch carries the config epoch.
  kEpochInstall,    // node installed a configuration (count = new n, peer = new rank)
  kEpochAbort,      // a live instance was aborted at an epoch boundary
  // Concurrent multi-transfer engine (PR 8).
  kEngineAdmit,     // engine admitted a transfer for self-coordination (count = inflight)
  kEngineDefer,     // admission cap reached; transfer queued (count = queue depth)
  kBatchDrain,      // one cross-transfer verify drain (count = messages,
                    // peer = CP equations folded into the combined pass)
  kContributeCited, // done-path evidence cites a contribution
                    // (instance = citing transfer, peer = contributor rank,
                    // count = the cited contribution's transfer id — I8/T8)
  // Stall watchdog (PR 9). Both carry a one-shot public state dump.
  kStall,           // per-transfer deadline expired (count = engine queue
                    // depth, peer = pending verifies, attempt = outstanding
                    // resend timers; parent = the transfer's last span, so
                    // walking parents recovers the stalled span stack)
  kStallResolved,   // a previously-stalled transfer made progress
                    // (count = stalled duration in µs)
};

// Stable wire name for a kind ("msg_send", "epoch_start", ...).
const char* kind_name(EventKind k);

// One trace event. Which optional fields are meaningful depends on `kind`
// (see to_jsonl and docs/OBSERVABILITY.md for the per-kind schema). All
// values are small integers — never protocol payload bytes.
struct TraceEvent {
  std::uint64_t ts = 0;    // microseconds (virtual under the Simulator)
  std::uint64_t node = 0;  // emitting node id
  EventKind kind = EventKind::kMsgSend;

  // Causal span linkage (PR 9). Every recorded event is itself a span:
  // `span` is a run-unique id minted by the transport at record time and
  // `parent` is the span of the event that caused it (the sending side's
  // span for kMsgRecv, the ambient handler span for everything else).
  // 0 means "absent" — tracing off, or a root event — and absent fields
  // are not serialized, so pre-span traces and unit-test events render
  // byte-identically to the v1 schema.
  std::uint64_t span = 0;
  std::uint64_t parent = 0;

  bool has_instance = false;   // transfer/coordinator/epoch are meaningful
  std::uint64_t transfer = 0;  // also set alone (no instance) for retransmits
  std::uint32_t coordinator = 0;
  std::uint32_t epoch = 0;

  std::uint64_t peer = 0;     // peer node / prover or culprit rank / timer key
  std::uint32_t subject = 0;  // MsgType or SignPurpose under scrutiny
  std::uint64_t count = 0;    // bytes, quorum sizes, frames re-sent, ...
  std::uint32_t attempt = 0;  // retransmit: sends so far for this timer key
  std::uint32_t cap = 0;      // retransmit: max attempts for this timer key
  std::uint32_t cfg_epoch = 0;  // config epoch (reconfiguration events; 0 = seed epoch)

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

// Trace schema version, serialized in the meta header as "v". Bumped to 2
// when events gained span/parent causal linkage; the offline tools
// (trace_check.py / trace_critpath.py) reject traces whose meta declares an
// older (or missing) version.
inline constexpr std::uint32_t kTraceSchemaVersion = 2;

// Run header, emitted once before any event so offline checkers know the
// fault-tolerance thresholds without out-of-band configuration.
struct RunMeta {
  std::uint64_t run_seed = 0;
  std::uint32_t a_n = 0;
  std::uint32_t a_f = 0;
  std::uint32_t b_n = 0;
  std::uint32_t b_f = 0;
  std::uint32_t retransmit_cap = 0;
  // Declared last so existing positional aggregate initializers keep their
  // meaning; defaults to the current schema version.
  std::uint32_t version = kTraceSchemaVersion;

  friend bool operator==(const RunMeta&, const RunMeta&) = default;
};

// Single-line JSON renderings (no trailing newline). Field order is fixed,
// values are all integers or fixed enum names: byte-identical across runs
// with equal inputs.
std::string to_jsonl(const TraceEvent& e);
std::string to_jsonl(const RunMeta& m);

class TraceRecorder {
 public:
  virtual ~TraceRecorder() = default;
  // Called once per run before any record() call.
  virtual void run_meta(const RunMeta& m) { (void)m; }
  virtual void record(const TraceEvent& e) = 0;
};

// In-memory recorder for tests and the C++ invariant checker.
class MemoryTraceRecorder final : public TraceRecorder {
 public:
  void run_meta(const RunMeta& m) override EXCLUDES(mu_);
  void record(const TraceEvent& e) override EXCLUDES(mu_);

  [[nodiscard]] RunMeta meta() const EXCLUDES(mu_);
  [[nodiscard]] std::vector<TraceEvent> events() const EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t count_of(EventKind k) const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  RunMeta meta_ GUARDED_BY(mu_);
  std::vector<TraceEvent> events_ GUARDED_BY(mu_);
};

// Streams one JSON object per line to `out`. The stream must outlive the
// recorder; writes are serialized so ThreadedBus nodes can log concurrently.
class JsonlTraceRecorder final : public TraceRecorder {
 public:
  explicit JsonlTraceRecorder(std::ostream& out) : out_(out) {}
  void run_meta(const RunMeta& m) override EXCLUDES(mu_);
  void record(const TraceEvent& e) override EXCLUDES(mu_);

 private:
  Mutex mu_;
  // The referenced stream is written only under mu_ (pt_guarded_by applies
  // to pointer members only, so the invariant is stated here instead).
  std::ostream& out_;
};

}  // namespace dblind::obs
