// Stall watchdog: per-transfer liveness deadlines over the trace stream.
//
// The watchdog answers "which transfers have gone quiet?" from inside the
// process, without waiting for an offline trace replay: ProtocolServer feeds
// it every transfer-scoped trace emission (progress), arms entries for the
// transfers it knows about, and sweeps expired entries from a low-frequency
// timer. A transfer idle past the deadline flips to *stalled* exactly once
// and is reported so the server can emit a kStall trace event carrying the
// transfer's latest span (whose parent chain IS the stalled span stack) and
// a one-shot public state dump (engine queue depth, pending verifies,
// outstanding retransmits — integers only, never secrets). When a stalled
// transfer makes progress again the watchdog reports the resolution for a
// matching kStallResolved event.
//
// The watchdog is observability, not protocol: it never influences protocol
// decisions, draws no randomness, and is disabled (and allocation-free) by
// default — ProtocolOptions::watchdog_deadline = 0 keeps the seed schedule
// byte-identical. Like all trace machinery it only runs when a recorder is
// installed; its outputs are trace events.
//
// Thread model: owned by one ProtocolServer and touched only from that
// node's handler thread (the same confinement as all round state), so no
// locking is needed — see the server.hpp state comments.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace dblind::obs {

class Watchdog {
 public:
  // `deadline_us` is the per-transfer idle bound in transport time
  // (virtual µs under the Simulator); 0 disables every method.
  explicit Watchdog(std::uint64_t deadline_us) : deadline_(deadline_us) {}

  [[nodiscard]] bool enabled() const { return deadline_ != 0; }
  [[nodiscard]] std::uint64_t deadline() const { return deadline_; }

  // A newly-stalled transfer, reported once per stall episode.
  struct Stall {
    std::uint64_t transfer = 0;
    std::uint64_t last_span = 0;  // the transfer's latest span at stall time
  };
  // A stalled transfer that made progress again.
  struct Resolution {
    std::uint64_t transfer = 0;
    std::uint64_t stalled_us = 0;  // time spent stalled
  };

  // Starts (or refreshes) tracking for `transfer`. Idempotent.
  void arm(std::uint64_t transfer, std::uint64_t now);

  // Progress on `transfer` at `now`: refreshes its deadline and remembers
  // `span` (0 keeps the previous span) as the latest span. Arms the entry if
  // it was unknown. Returns the resolution if the transfer was stalled.
  std::optional<Resolution> progress(std::uint64_t transfer, std::uint64_t now,
                                     std::uint64_t span);

  // Terminal progress: like progress(), then stops tracking the transfer.
  std::optional<Resolution> complete(std::uint64_t transfer, std::uint64_t now);

  // Stops tracking without a resolution (epoch aborts, restores).
  void disarm(std::uint64_t transfer);
  void reset() { entries_.clear(); }

  // Sweep at `now`: every tracked transfer idle past the deadline flips to
  // stalled (exactly once per episode) and is returned.
  [[nodiscard]] std::vector<Stall> expired(std::uint64_t now);

  // True while at least one tracked transfer is NOT stalled — i.e. a future
  // sweep could still find something to report. The owner keeps its sweep
  // timer armed only while this holds, so a fully-stalled (or fully-done)
  // node lets the simulator's event queue drain.
  [[nodiscard]] bool needs_sweep() const;

  // Currently-stalled transfer count (tests).
  [[nodiscard]] std::size_t stalled_count() const;

 private:
  struct Entry {
    std::uint64_t last_activity = 0;
    std::uint64_t last_span = 0;
    std::uint64_t stalled_at = 0;  // meaningful while stalled
    bool stalled = false;
  };

  std::uint64_t deadline_;
  std::map<std::uint64_t, Entry> entries_;
};

}  // namespace dblind::obs
