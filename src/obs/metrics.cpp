#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace dblind::obs {

namespace detail {

std::atomic<std::uint64_t>& discard_cell() {
  static std::atomic<std::uint64_t> cell{0};
  return cell;
}

HistogramCell& discard_histogram() {
  static HistogramCell cell{{}};
  return cell;
}

}  // namespace detail

namespace {

void append_escaped(std::string& out, const std::string& v) {
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
}

}  // namespace

std::string label_text(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    append_escaped(out, v);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

void MetricsRegistry::set_max_series_per_family(std::size_t cap) {
  MutexLock lock(mu_);
  max_series_per_family_ = cap;
}

bool MetricsRegistry::admit_series(const std::string& name) {
  std::size_t& n = family_sizes_[name];
  if (max_series_per_family_ == 0 || n < max_series_per_family_) {
    ++n;
    return true;
  }
  dropped_labels_.fetch_add(1, std::memory_order_relaxed);
  if (!drop_series_registered_) {
    // Self-register the drop counter (as an attached read-only series, so
    // writable handles for its name degrade to the discard cell) the first
    // time a label set is refused — every later scrape shows the loss.
    drop_series_registered_ = true;
    ScalarSeries s;
    s.cell = &dropped_labels_;
    scalars_.emplace(SeriesKey{kDroppedLabelsMetric, ""}, std::move(s));
    ++family_sizes_[kDroppedLabelsMetric];
  }
  return false;
}

std::atomic<std::uint64_t>* MetricsRegistry::scalar_cell(
    const std::string& name, const LabelSet& labels, bool is_gauge) {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  SeriesKey key{name, label_text(sorted)};
  MutexLock lock(mu_);
  auto it = scalars_.find(key);
  if (it == scalars_.end()) {
    if (!admit_series(name)) return &detail::discard_cell();
    ScalarSeries s;
    s.labels = std::move(sorted);
    s.owned = std::make_unique<std::atomic<std::uint64_t>>(0);
    s.cell = s.owned.get();
    s.is_gauge = is_gauge;
    it = scalars_.emplace(std::move(key), std::move(s)).first;
  }
  // An attached series has no owned cell and cannot back a writable handle;
  // hand out the discard cell so the caller's updates stay harmless.
  if (it->second.owned == nullptr) return &detail::discard_cell();
  return it->second.owned.get();
}

Counter MetricsRegistry::counter(const std::string& name,
                                 const LabelSet& labels) {
  return Counter(scalar_cell(name, labels, /*is_gauge=*/false));
}

Gauge MetricsRegistry::gauge(const std::string& name, const LabelSet& labels) {
  return Gauge(scalar_cell(name, labels, /*is_gauge=*/true));
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     const LabelSet& labels,
                                     std::vector<std::uint64_t> bounds) {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  SeriesKey key{name, label_text(sorted)};
  MutexLock lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    if (!admit_series(name)) return Histogram(&detail::discard_histogram());
    HistogramSeries h;
    h.labels = std::move(sorted);
    h.cell = std::make_unique<detail::HistogramCell>(std::move(bounds));
    it = histograms_.emplace(std::move(key), std::move(h)).first;
  }
  return Histogram(it->second.cell.get());
}

void MetricsRegistry::attach_counter(const std::string& name,
                                     const LabelSet& labels,
                                     const std::atomic<std::uint64_t>* cell) {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  SeriesKey key{name, label_text(sorted)};
  MutexLock lock(mu_);
  auto it = scalars_.find(key);
  if (it != scalars_.end()) {
    it->second.owned.reset();
    it->second.cell = cell;
    return;
  }
  if (!admit_series(name)) return;  // past the cap: counted, not exposed
  ScalarSeries s;
  s.labels = std::move(sorted);
  s.cell = cell;
  scalars_.emplace(std::move(key), std::move(s));
}

std::vector<MetricsRegistry::ScalarSample> MetricsRegistry::scalar_samples()
    const {
  MutexLock lock(mu_);
  std::vector<ScalarSample> out;
  out.reserve(scalars_.size());
  for (const auto& [key, s] : scalars_) {
    out.push_back({key.first, s.labels,
                   s.cell->load(std::memory_order_relaxed), s.is_gauge});
  }
  return out;
}

std::vector<MetricsRegistry::HistogramSample>
MetricsRegistry::histogram_samples() const {
  MutexLock lock(mu_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [key, h] : histograms_) {
    HistogramSample s;
    s.name = key.first;
    s.labels = h.labels;
    s.bounds = h.cell->bounds;
    s.buckets.reserve(h.cell->buckets.size());
    for (const auto& b : h.cell->buckets) {
      s.buckets.push_back(b.load(std::memory_order_relaxed));
    }
    s.total = h.cell->total.load(std::memory_order_relaxed);
    s.count = h.cell->count.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::prometheus_text() const {
  // std::map iteration gives (name, labels) sorted order, so the dump is
  // deterministic for a deterministic run.
  std::ostringstream out;
  MutexLock lock(mu_);
  std::string last_name;
  for (const auto& [key, s] : scalars_) {
    if (key.first != last_name) {
      out << "# TYPE " << key.first << (s.is_gauge ? " gauge" : " counter")
          << "\n";
      last_name = key.first;
    }
    out << key.first << key.second << " "
        << s.cell->load(std::memory_order_relaxed) << "\n";
  }
  last_name.clear();
  for (const auto& [key, h] : histograms_) {
    if (key.first != last_name) {
      out << "# TYPE " << key.first << " histogram\n";
      last_name = key.first;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.cell->buckets.size(); ++i) {
      cumulative += h.cell->buckets[i].load(std::memory_order_relaxed);
      LabelSet with_le = h.labels;
      with_le.emplace_back("le", i < h.cell->bounds.size()
                                     ? std::to_string(h.cell->bounds[i])
                                     : "+Inf");
      out << key.first << "_bucket" << label_text(with_le) << " " << cumulative
          << "\n";
    }
    out << key.first << "_sum" << key.second << " "
        << h.cell->total.load(std::memory_order_relaxed) << "\n";
    out << key.first << "_count" << key.second << " "
        << h.cell->count.load(std::memory_order_relaxed) << "\n";
  }
  return out.str();
}

}  // namespace dblind::obs
