// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for: commitments κ(·) in the distributed blinding protocol, the
// Fiat-Shamir challenges of every NIZK, message digests for Schnorr
// signatures, and Prng stream derivation.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dblind::hash {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view s);
  // Finalizes and returns the digest; the object must not be reused after.
  [[nodiscard]] Digest finish();

  [[nodiscard]] static Digest digest(std::span<const std::uint8_t> data);
  [[nodiscard]] static Digest digest(std::string_view s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_{};
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> msg);

[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);
// Throws std::invalid_argument on bad input (odd length / non-hex chars).
[[nodiscard]] std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace dblind::hash
