#include "hash/sha256.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace dblind::hash {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInit = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                                                0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

}  // namespace

Sha256::Sha256() : h_(kInit) {}

void Sha256::process_block(const std::uint8_t* block) {
  std::array<std::uint32_t, 64> w{};
  for (int i = 0; i < 16; ++i) {
    w[static_cast<std::size_t>(i)] =
        (static_cast<std::uint32_t>(block[4 * i]) << 24) |
        (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
        (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
        static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    std::uint32_t s0 = std::rotr(w[static_cast<std::size_t>(i - 15)], 7) ^
                       std::rotr(w[static_cast<std::size_t>(i - 15)], 18) ^
                       (w[static_cast<std::size_t>(i - 15)] >> 3);
    std::uint32_t s1 = std::rotr(w[static_cast<std::size_t>(i - 2)], 17) ^
                       std::rotr(w[static_cast<std::size_t>(i - 2)], 19) ^
                       (w[static_cast<std::size_t>(i - 2)] >> 10);
    w[static_cast<std::size_t>(i)] =
        w[static_cast<std::size_t>(i - 16)] + s0 + w[static_cast<std::size_t>(i - 7)] + s1;
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  std::uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t s1 = std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    std::uint32_t ch = (e & f) ^ (~e & g);
    std::uint32_t t1 = h + s1 + ch + kK[static_cast<std::size_t>(i)] + w[static_cast<std::size_t>(i)];
    std::uint32_t s0 = std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    std::uint32_t t2 = s0 + maj;
    h = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  h_[0] += a; h_[1] += b; h_[2] += c; h_[3] += d;
  h_[4] += e; h_[5] += f; h_[6] += g; h_[7] += h;
}

Sha256& Sha256::update(std::span<const std::uint8_t> data) {
  if (data.empty()) return *this;
  total_len_ += data.size();
  std::size_t off = 0;
  if (buf_len_ != 0) {
    std::size_t take = std::min<std::size_t>(64 - buf_len_, data.size());
    std::memcpy(buf_.data() + buf_len_, data.data(), take);
    buf_len_ += take;
    off = take;
    if (buf_len_ == 64) {
      process_block(buf_.data());
      buf_len_ = 0;
    }
  }
  while (off + 64 <= data.size()) {
    process_block(data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    std::memcpy(buf_.data(), data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
  return *this;
}

Sha256& Sha256::update(std::string_view s) {
  return update(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(s.data()),
                                              s.size()));
}

Digest Sha256::finish() {
  std::uint64_t bit_len = total_len_ * 8;
  std::uint8_t pad = 0x80;
  update(std::span<const std::uint8_t>(&pad, 1));
  std::uint8_t zero = 0;
  while (buf_len_ != 56) update(std::span<const std::uint8_t>(&zero, 1));
  std::array<std::uint8_t, 8> len{};
  for (int i = 0; i < 8; ++i) len[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  update(len);
  Digest out{};
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(4 * i + 0)] = static_cast<std::uint8_t>(h_[static_cast<std::size_t>(i)] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(h_[static_cast<std::size_t>(i)] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(h_[static_cast<std::size_t>(i)] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(h_[static_cast<std::size_t>(i)]);
  }
  return out;
}

Digest Sha256::digest(std::span<const std::uint8_t> data) { return Sha256().update(data).finish(); }

Digest Sha256::digest(std::string_view s) { return Sha256().update(s).finish(); }

Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> msg) {
  std::array<std::uint8_t, 64> k{};
  if (key.size() > 64) {
    Digest kd = Sha256::digest(key);
    std::memcpy(k.data(), kd.data(), kd.size());
  } else if (!key.empty()) {
    std::memcpy(k.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, 64> ipad{}, opad{};
  for (int i = 0; i < 64; ++i) {
    ipad[static_cast<std::size_t>(i)] = k[static_cast<std::size_t>(i)] ^ 0x36;
    opad[static_cast<std::size_t>(i)] = k[static_cast<std::size_t>(i)] ^ 0x5c;
  }
  Digest inner = Sha256().update(ipad).update(msg).finish();
  return Sha256().update(opad).update(inner).finish();
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("from_hex: odd length");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument("from_hex: bad digit");
  };
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) | nibble(hex[2 * i + 1]));
  return out;
}

}  // namespace dblind::hash
