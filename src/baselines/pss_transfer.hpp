// Baseline: PSS-based secret transfer (paper §5, "Proactive Secret-Sharing").
//
// Instead of storing E_A(m), service A stores m itself as Shamir shares.
// Transferring m to service B is a share *resharing*: each A server i deals
// its share s_i to B's servers with a fresh degree-f_B polynomial (Feldman-
// committed), and B server j combines the sub-shares it received from a
// quorum Q with Lagrange weights: s'_j = Σ_{i∈Q} λ_i · sub_{i,j}. The result
// is a fresh, independent (n_B, f_B) sharing of m.
//
// The same machinery implements proactive refresh (reshare within one
// service), whose recurring cost — proportional to the NUMBER OF SECRETS
// STORED — is the drawback the paper cites as motivation for re-encryption
// (§5: "a service that stores a lot then incurs a significant recurring
// overhead").
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "threshold/feldman.hpp"
#include "threshold/keygen.hpp"
#include "threshold/shamir.hpp"

namespace dblind::baselines {

using mpz::Bigint;

// What dealer (A server) i sends: one sub-share per B server, plus the
// public Feldman commitments of its resharing polynomial.
struct ReshareDeal {
  std::uint32_t dealer = 0;                      // index of the A server
  threshold::FeldmanCommitments commitments;     // degree f_B; constant term = g^{s_i}
  std::vector<threshold::Share> subshares;       // subshares[j-1] goes to B server j
};

// Deals share `s` of A server `dealer` to an (n_b, f_b) service.
[[nodiscard]] ReshareDeal pss_deal(const group::GroupParams& params, const threshold::Share& s,
                                   std::size_t n_b, std::size_t f_b, mpz::Prng& prng);

// Verifies the sub-share destined for B server `recipient` against the
// deal's commitments AND checks the deal reshapes the dealer's committed
// share (constant term must equal the dealer's verification key
// g^{s_dealer}, derived from A's original commitments).
[[nodiscard]] bool pss_verify_subshare(const group::GroupParams& params,
                                       const threshold::FeldmanCommitments& a_commitments,
                                       const ReshareDeal& deal, std::uint32_t recipient);

// B server `recipient` combines the sub-shares from quorum `deals` (all
// dealers distinct, each verified) into its new share of m.
[[nodiscard]] threshold::Share pss_combine(const group::GroupParams& params,
                                           std::span<const ReshareDeal> deals,
                                           std::uint32_t recipient);

// Joint Feldman commitments of the NEW sharing (for future verification):
// C'_k = Π_i (C_{i,k})^{λ_i}.
[[nodiscard]] threshold::FeldmanCommitments pss_new_commitments(
    const group::GroupParams& params, std::span<const ReshareDeal> deals);

// Convenience: full transfer of a secret shared at A to service B.
// Returns B's new shares (indexable by rank). Used by tests and benches.
struct PssTransferResult {
  std::vector<threshold::Share> b_shares;
  threshold::FeldmanCommitments b_commitments;
  std::uint64_t messages = 0;  // point-to-point sub-share messages
  std::uint64_t bytes = 0;     // approximate wire bytes
};
[[nodiscard]] PssTransferResult pss_transfer(const group::GroupParams& params,
                                             std::span<const threshold::Share> a_quorum,
                                             const threshold::FeldmanCommitments& a_commitments,
                                             std::size_t n_b, std::size_t f_b, mpz::Prng& prng);

}  // namespace dblind::baselines
