#include "baselines/jakobsson.hpp"

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpz/modmath.hpp"

namespace dblind::baselines {

namespace {

std::string enc_context(std::string_view context) {
  return "dblind/jakobsson/enc/" + std::string(context);
}

std::string dec_context(std::string_view context) {
  return "dblind/jakobsson/dec/" + std::string(context);
}

}  // namespace

JakobssonPartial jakobsson_partial(const group::GroupParams& params, const elgamal::Ciphertext& c,
                                   const threshold::Share& a_share, const Bigint& y_b,
                                   std::string_view context, mpz::Prng& prng) {
  JakobssonPartial out;
  out.index = a_share.index;
  Bigint r_prime = params.random_exponent(prng);
  out.enc_g = params.pow_g(r_prime);
  out.enc_y = params.pow(y_b, r_prime);
  zkp::DlogStatement stmt{params.g(), out.enc_g, y_b, out.enc_y};
  out.enc_proof = zkp::dlog_prove(params, stmt, r_prime, enc_context(context), prng);
  out.dec = threshold::make_decryption_share(params, c, a_share, dec_context(context), prng);
  return out;
}

bool jakobsson_verify_partial(const group::GroupParams& params,
                              const threshold::FeldmanCommitments& a_commitments,
                              const elgamal::Ciphertext& c, const Bigint& y_b,
                              const JakobssonPartial& partial, std::string_view context) {
  if (partial.index == 0 || partial.index != partial.dec.index) return false;
  zkp::DlogStatement stmt{params.g(), partial.enc_g, y_b, partial.enc_y};
  if (!zkp::dlog_verify(params, stmt, partial.enc_proof, enc_context(context))) return false;
  return threshold::verify_decryption_share(params, a_commitments, c, partial.dec,
                                            dec_context(context));
}

elgamal::Ciphertext jakobsson_combine(const group::GroupParams& params,
                                      const elgamal::Ciphertext& c,
                                      std::span<const JakobssonPartial> partials) {
  if (partials.empty()) throw std::invalid_argument("jakobsson_combine: no partials");
  std::set<std::uint32_t> seen;
  std::vector<std::uint32_t> indices;
  for (const JakobssonPartial& p : partials) {
    if (!seen.insert(p.index).second)
      throw std::invalid_argument("jakobsson_combine: duplicate index");
    indices.push_back(p.index);
  }
  // a' = Π g^{r'_i},  y' = Π y_B^{r'_i},  a^{k_A} = Π d_i^{λ_i}.
  Bigint a_prime = params.identity(), y_prime = params.identity(), a_ka = params.identity();
  for (const JakobssonPartial& p : partials) {
    a_prime = params.mul(a_prime, p.enc_g);
    y_prime = params.mul(y_prime, p.enc_y);
    Bigint lambda = threshold::lagrange_at_zero(indices, p.index, params.q());
    a_ka = params.mul(a_ka, params.pow(p.dec.d, lambda));
  }
  // E_B(m) = (a', b · y' / a^{k_A}) = (g^{r'}, m·y_B^{r'}).
  Bigint b_out = params.mul(c.b, params.mul(y_prime, params.inv(a_ka)));
  return {std::move(a_prime), std::move(b_out)};
}

}  // namespace dblind::baselines
