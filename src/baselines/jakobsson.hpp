// Baseline: Jakobsson's quorum-controlled asymmetric proxy re-encryption
// (PKC'99), as characterized in the paper's §5 and footnote 11.
//
// Idea: E_A(m, r) = (g^r, m·y_A^r). Encrypting the second component under
// K_B and then decrypting under k_A yields a ciphertext under K_B:
//
//   (g^r, m·y_A^r)  --partial-encrypt-->  m·y_A^r·y_B^{r'}
//                   --threshold-decrypt-->  m·y_B^{r'}
//   output: (g^{r'}, m·y_B^{r'}) = E_B(m, r').
//
// Each quorum server i of service A contributes, in ONE round, both a
// partial encryption (r'_i with g^{r'_i}, y_B^{r'_i} and a Chaum-Pedersen
// proof — the role the paper's "translation certificates" play) and a
// partial decryption (d_i = (g^r)^{x_i} with a share-correctness proof).
//
// Structural contrast with the paper's protocol (what the benches measure):
// every step runs on service A, and nothing can start before E_A(m) is
// known — no pre-computation, no offloading to B.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "threshold/thresh_decrypt.hpp"
#include "zkp/chaum_pedersen.hpp"

namespace dblind::baselines {

using mpz::Bigint;

struct JakobssonPartial {
  std::uint32_t index = 0;
  Bigint enc_g;  // g^{r'_i}
  Bigint enc_y;  // y_B^{r'_i}
  zkp::DlogEqProof enc_proof;        // DLOG(r'_i, g, g^{r'_i}, y_B, y_B^{r'_i})
  threshold::DecryptionShare dec;    // d_i = a^{x_i} with proof

  friend bool operator==(const JakobssonPartial&, const JakobssonPartial&) = default;
};

// Server i's one-round contribution for re-encrypting `c` (under A) to B.
[[nodiscard]] JakobssonPartial jakobsson_partial(const group::GroupParams& params,
                                                 const elgamal::Ciphertext& c,
                                                 const threshold::Share& a_share,
                                                 const Bigint& y_b, std::string_view context,
                                                 mpz::Prng& prng);

// Verifies both halves of a partial against A's Feldman commitments.
[[nodiscard]] bool jakobsson_verify_partial(const group::GroupParams& params,
                                            const threshold::FeldmanCommitments& a_commitments,
                                            const elgamal::Ciphertext& c, const Bigint& y_b,
                                            const JakobssonPartial& partial,
                                            std::string_view context);

// Combines f+1 verified partials into E_B(m). Throws std::invalid_argument
// on duplicates/empty.
[[nodiscard]] elgamal::Ciphertext jakobsson_combine(const group::GroupParams& params,
                                                    const elgamal::Ciphertext& c,
                                                    std::span<const JakobssonPartial> partials);

}  // namespace dblind::baselines
