#include "baselines/pss_transfer.hpp"

#include <set>
#include <stdexcept>

#include "mpz/modmath.hpp"

namespace dblind::baselines {

ReshareDeal pss_deal(const group::GroupParams& params, const threshold::Share& s, std::size_t n_b,
                     std::size_t f_b, mpz::Prng& prng) {
  if (s.index == 0) throw std::invalid_argument("pss_deal: bad dealer index");
  ReshareDeal deal;
  deal.dealer = s.index;
  std::vector<Bigint> poly = threshold::sharing_polynomial(s.value, f_b, params.q(), prng);
  deal.commitments = threshold::feldman_commit(params, poly);
  deal.subshares.reserve(n_b);
  for (std::uint32_t j = 1; j <= n_b; ++j)
    deal.subshares.push_back({j, threshold::eval_polynomial(poly, j, params.q())});
  return deal;
}

bool pss_verify_subshare(const group::GroupParams& params,
                         const threshold::FeldmanCommitments& a_commitments,
                         const ReshareDeal& deal, std::uint32_t recipient) {
  if (recipient == 0 || recipient > deal.subshares.size()) return false;
  // The constant term of the resharing must commit to the dealer's original
  // share: C_{i,0} == g^{s_i} (from A's public commitments).
  if (deal.commitments.coefficients.empty()) return false;
  if (deal.commitments.coefficients[0] != threshold::feldman_eval(params, a_commitments,
                                                                  deal.dealer))
    return false;
  return threshold::feldman_verify(params, deal.commitments, deal.subshares[recipient - 1]);
}

threshold::Share pss_combine(const group::GroupParams& params, std::span<const ReshareDeal> deals,
                             std::uint32_t recipient) {
  if (deals.empty()) throw std::invalid_argument("pss_combine: no deals");
  std::vector<std::uint32_t> dealers;
  std::set<std::uint32_t> seen;
  for (const ReshareDeal& d : deals) {
    if (!seen.insert(d.dealer).second) throw std::invalid_argument("pss_combine: duplicate dealer");
    dealers.push_back(d.dealer);
  }
  Bigint acc(0);
  for (const ReshareDeal& d : deals) {
    if (recipient == 0 || recipient > d.subshares.size())
      throw std::invalid_argument("pss_combine: bad recipient");
    Bigint lambda = threshold::lagrange_at_zero(dealers, d.dealer, params.q());
    acc = mpz::addmod(acc, mpz::mulmod(lambda, d.subshares[recipient - 1].value, params.q()),
                      params.q());
  }
  return {recipient, std::move(acc)};
}

threshold::FeldmanCommitments pss_new_commitments(const group::GroupParams& params,
                                                  std::span<const ReshareDeal> deals) {
  if (deals.empty()) throw std::invalid_argument("pss_new_commitments: no deals");
  std::vector<std::uint32_t> dealers;
  for (const ReshareDeal& d : deals) dealers.push_back(d.dealer);
  std::size_t width = deals[0].commitments.coefficients.size();
  threshold::FeldmanCommitments out;
  out.coefficients.assign(width, params.identity());
  for (const ReshareDeal& d : deals) {
    if (d.commitments.coefficients.size() != width)
      throw std::invalid_argument("pss_new_commitments: inconsistent degrees");
    Bigint lambda = threshold::lagrange_at_zero(dealers, d.dealer, params.q());
    for (std::size_t k = 0; k < width; ++k) {
      out.coefficients[k] =
          params.mul(out.coefficients[k], params.pow(d.commitments.coefficients[k], lambda));
    }
  }
  return out;
}

PssTransferResult pss_transfer(const group::GroupParams& params,
                               std::span<const threshold::Share> a_quorum,
                               const threshold::FeldmanCommitments& a_commitments,
                               std::size_t n_b, std::size_t f_b, mpz::Prng& prng) {
  PssTransferResult out;
  std::vector<ReshareDeal> deals;
  deals.reserve(a_quorum.size());
  for (const threshold::Share& s : a_quorum) {
    deals.push_back(pss_deal(params, s, n_b, f_b, prng));
  }
  // Every sub-share travels on its own pairwise-secure link (this is the
  // structural drawback §5 notes: every A server needs a secure channel to
  // every B server, so server keys must be visible across services).
  const std::size_t elem = params.element_size();
  out.messages = a_quorum.size() * n_b;
  out.bytes = out.messages * (elem /*sub-share*/ + (f_b + 1) * elem /*commitments*/);

  for (std::uint32_t j = 1; j <= n_b; ++j) {
    for (const ReshareDeal& d : deals) {
      if (!pss_verify_subshare(params, a_commitments, d, j))
        throw std::runtime_error("pss_transfer: sub-share verification failed");
    }
    out.b_shares.push_back(pss_combine(params, deals, j));
  }
  out.b_commitments = pss_new_commitments(params, deals);
  return out;
}

}  // namespace dblind::baselines
