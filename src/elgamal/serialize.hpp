// Byte encodings for ElGamal artifacts (see group/serialize.hpp for the
// rationale). Public keys embed their group parameters so a single blob is
// self-describing; ciphertexts do not (they are exchanged in volume between
// parties that already agree on a group).
#pragma once

#include <vector>

#include "common/codec.hpp"
#include "elgamal/elgamal.hpp"

namespace dblind::elgamal {

[[nodiscard]] std::vector<std::uint8_t> public_key_to_bytes(const PublicKey& key);
// Validates structurally (trusted group load + subgroup membership of y).
[[nodiscard]] PublicKey public_key_from_bytes(std::span<const std::uint8_t> bytes);

[[nodiscard]] std::vector<std::uint8_t> ciphertext_to_bytes(const Ciphertext& c);
[[nodiscard]] Ciphertext ciphertext_from_bytes(std::span<const std::uint8_t> bytes);

}  // namespace dblind::elgamal
