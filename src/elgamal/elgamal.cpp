#include "elgamal/elgamal.hpp"

#include <stdexcept>

namespace dblind::elgamal {

PublicKey::PublicKey(GroupParams params, Bigint y) : params_(std::move(params)), y_(std::move(y)) {
  if (!params_.in_group(y_))
    throw std::invalid_argument("PublicKey: y is not a group element");
}

Ciphertext PublicKey::encrypt(const Bigint& m, mpz::Prng& prng) const {
  return encrypt_with_nonce(m, params_.random_exponent(prng));
}

Ciphertext PublicKey::encrypt_with_nonce(const Bigint& m, const Bigint& r) const {
  if (!params_.in_group(m))
    throw std::invalid_argument("encrypt: plaintext is not a group element");
  if (r.is_zero() || r.is_negative() || r >= params_.q())
    throw std::invalid_argument("encrypt: nonce out of Z_q^*");
  // pow_fixed: comb table when y is a pinned protocol base (the service keys
  // are pinned by ProtocolServer), plain pow otherwise — same values.
  return {params_.pow_g(r), params_.mul(m, params_.pow_fixed(y_, r))};
}

bool PublicKey::well_formed(const Ciphertext& c) const {
  return params_.in_zp_star(c.a) && params_.in_zp_star(c.b);
}

Ciphertext PublicKey::inverse(const Ciphertext& c) const {
  return {params_.inv(c.a), params_.inv(c.b)};
}

Ciphertext PublicKey::juxtapose(const Bigint& m_prime, const Ciphertext& c) const {
  return {c.a, params_.mul(m_prime, c.b)};
}

std::optional<Ciphertext> PublicKey::multiply(const Ciphertext& c1, const Ciphertext& c2) const {
  Ciphertext out{params_.mul(c1.a, c2.a), params_.mul(c1.b, c2.b)};
  // Side condition of ElGamal Multiplication: r1 + r2 must stay in Z_q^*,
  // checked without knowing r1, r2 by testing a != 1 (§3).
  if (params_.is_identity(out.a)) return std::nullopt;
  return out;
}

std::optional<Ciphertext> PublicKey::product(std::span<const Ciphertext> cs) const {
  if (cs.empty()) throw std::invalid_argument("product: empty ciphertext list");
  // Fold componentwise without intermediate degeneracy checks: the paper's
  // side condition constrains only the *total* r_1 + ... + r_k, so a zero
  // partial sum that a later factor cancels out again is fine.
  Ciphertext acc = cs[0];
  for (std::size_t i = 1; i < cs.size(); ++i) {
    acc.a = params_.mul(acc.a, cs[i].a);
    acc.b = params_.mul(acc.b, cs[i].b);
  }
  if (params_.is_identity(acc.a)) return std::nullopt;
  return acc;
}

KeyPair KeyPair::generate(const GroupParams& params, mpz::Prng& prng) {
  return from_private(params, params.random_exponent(prng));
}

KeyPair KeyPair::from_private(const GroupParams& params, Bigint k) {
  if (k.is_zero() || k.is_negative() || k >= params.q())
    throw std::invalid_argument("KeyPair: private key out of Z_q^*");
  Bigint y = params.pow_g(k);
  return KeyPair(PublicKey(params, std::move(y)), std::move(k));
}

Bigint KeyPair::decrypt(const Ciphertext& c) const {
  const GroupParams& params = pub_.params();
  if (!pub_.well_formed(c)) throw std::invalid_argument("decrypt: malformed ciphertext");
  Bigint ak = params.pow(c.a, k_);
  return params.mul(c.b, params.inv(ak));
}

}  // namespace dblind::elgamal
