// ElGamal public-key encryption and the ciphertext algebra of §3.
//
// A ciphertext for m ∈ G_p is E(m, r) = (g^r, m·y^r). The paper's three
// operations — Inverse, Juxtaposition and Multiplication (the homomorphic
// property) — are what make re-encryption by blinding work, so they are
// first-class here, together with the `a != 1` side-condition check that
// guards ElGamal Multiplication against r1 + r2 = 0.
#pragma once

#include <optional>
#include <vector>

#include "group/params.hpp"
#include "mpz/bigint.hpp"
#include "mpz/random.hpp"

namespace dblind::elgamal {

using group::GroupParams;
using mpz::Bigint;

struct Ciphertext {
  Bigint a;  // g^r
  Bigint b;  // m * y^r

  friend bool operator==(const Ciphertext&, const Ciphertext&) = default;
};

class PublicKey {
 public:
  // y = g^k. Validates y ∈ G_p (throws std::invalid_argument).
  PublicKey(GroupParams params, Bigint y);

  [[nodiscard]] const GroupParams& params() const { return params_; }
  [[nodiscard]] const Bigint& y() const { return y_; }

  // E(m, r) with fresh random r ∈ Z_q^*. Precondition: m ∈ G_p (checked).
  [[nodiscard]] Ciphertext encrypt(const Bigint& m, mpz::Prng& prng) const;
  // E(m, r) with caller-chosen r (used by proofs that need to know r).
  [[nodiscard]] Ciphertext encrypt_with_nonce(const Bigint& m, const Bigint& r) const;

  // True iff both components are in Z_p^* — the well-formedness every
  // receiver checks before using a ciphertext.
  [[nodiscard]] bool well_formed(const Ciphertext& c) const;

  // -- §3 ciphertext algebra -------------------------------------------------
  // ElGamal Inverse: E(m)^{-1} ∈ E(m^{-1}).
  [[nodiscard]] Ciphertext inverse(const Ciphertext& c) const;
  // ElGamal Juxtaposition: m' · E(m, r) = E(m'·m, r).
  [[nodiscard]] Ciphertext juxtapose(const Bigint& m_prime, const Ciphertext& c) const;
  // ElGamal Multiplication: E(m1,r1) × E(m2,r2) ∈ E(m1·m2) provided
  // r1+r2 ∈ Z_q^*. Returns nullopt when the side condition fails (a == 1),
  // in which case the paper says to solicit fresh values.
  [[nodiscard]] std::optional<Ciphertext> multiply(const Ciphertext& c1,
                                                   const Ciphertext& c2) const;
  // Product of many ciphertexts (×_{i} E(m_i)); nullopt on degenerate result.
  [[nodiscard]] std::optional<Ciphertext> product(std::span<const Ciphertext> cs) const;

  friend bool operator==(const PublicKey&, const PublicKey&) = default;

 private:
  GroupParams params_;
  Bigint y_;
};

class KeyPair {
 public:
  // Fresh key: k uniform in [1, q), y = g^k.
  static KeyPair generate(const GroupParams& params, mpz::Prng& prng);
  // From an existing private key (e.g. reconstructed in tests).
  static KeyPair from_private(const GroupParams& params, Bigint k);

  [[nodiscard]] const PublicKey& public_key() const { return pub_; }
  [[nodiscard]] const Bigint& private_key() const { return k_; }

  // Decrypts c = (a, b) as b / a^k. Throws std::invalid_argument on
  // malformed ciphertexts.
  [[nodiscard]] Bigint decrypt(const Ciphertext& c) const;

 private:
  KeyPair(PublicKey pub, Bigint k) : pub_(std::move(pub)), k_(std::move(k)) {}

  PublicKey pub_;
  Bigint k_;
};

}  // namespace dblind::elgamal
