#include "elgamal/serialize.hpp"

#include "group/serialize.hpp"

namespace dblind::elgamal {

namespace {

constexpr std::uint8_t kPublicKeyTag = 0x21;
constexpr std::uint8_t kCiphertextTag = 0x22;

}  // namespace

std::vector<std::uint8_t> public_key_to_bytes(const PublicKey& key) {
  common::Writer w;
  w.u8(kPublicKeyTag);
  w.bytes(group::group_params_to_bytes(key.params()));
  w.bigint(key.y());
  return w.take();
}

PublicKey public_key_from_bytes(std::span<const std::uint8_t> bytes) {
  common::Reader r(bytes);
  if (r.u8() != kPublicKeyTag) throw common::CodecError("public_key: bad tag");
  auto params_bytes = r.bytes();
  mpz::Bigint y = r.bigint();
  r.expect_done();
  group::GroupParams params = group::group_params_from_bytes_trusted(params_bytes);
  return PublicKey(std::move(params), std::move(y));  // validates y ∈ G_p
}

std::vector<std::uint8_t> ciphertext_to_bytes(const Ciphertext& c) {
  common::Writer w;
  w.u8(kCiphertextTag);
  w.bigint(c.a);
  w.bigint(c.b);
  return w.take();
}

Ciphertext ciphertext_from_bytes(std::span<const std::uint8_t> bytes) {
  common::Reader r(bytes);
  if (r.u8() != kCiphertextTag) throw common::CodecError("ciphertext: bad tag");
  Ciphertext c;
  c.a = r.bigint();
  c.b = r.bigint();
  r.expect_done();
  return c;
}

}  // namespace dblind::elgamal
