// Group parameters for ElGamal — the facade over the group backends.
//
// The paper (§3) fixes large primes p, q with p = 2q + 1 and works in the
// cyclic subgroup G_p ⊆ Z_p* of order q with generator g. Everything the
// protocol does with that group is generic prime-order algebra, so the same
// facade now fronts two backends (group/backend.hpp):
//
//   mod-p  (backend::ModP) — the paper's safe-prime QR subgroup; the
//          differential oracle. Named ids kToy64 .. kSec2048.
//   ec255  (backend::Ec)   — ristretto255, a prime-order group over
//          Curve25519 with 32-byte canonical encodings. Named id kEc255.
//
// Group elements are Bigints holding the backend's canonical encoding, so
// call sites (ciphertexts, proofs, commitments, transcripts, codecs) are
// backend-agnostic. Use identity()/is_identity() instead of Bigint(1) — the
// EC identity encodes as 0.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "group/backend.hpp"
#include "mpz/bigint.hpp"
#include "mpz/random.hpp"

namespace dblind::group {

using mpz::Bigint;

// Named, pre-generated parameter sets. The mod-p sets embed safe primes found
// once offline with 40-round Miller-Rabin (see tests/group/params_test.cpp
// for re-verification); kEc255 is the fixed ristretto255 group.
enum class ParamId : std::uint8_t {
  kToy64 = 0,  // tests only — breakable, never for real secrets
  kTest128,
  kTest256,
  kSec512,
  kSec1024,  // "realistic" for the paper's 2005 setting
  kSec2048,
  kEc255,  // ristretto255 (~128-bit security, 32-byte elements)
};

using backend::Kind;

class GroupParams {
 public:
  // Fixed named parameters; cheap (values are embedded constants).
  static GroupParams named(ParamId id);
  // `id` unless the DBLIND_BACKEND environment variable overrides the
  // backend ("ec"/"ec255" -> kEc255, "modp" or unset -> `id`). This is how
  // the CI backend matrix retargets default-parameter tests and harnesses
  // without touching each call site.
  static GroupParams named_or_env(ParamId id);
  // Fresh safe-prime group of `bits` bits; expensive for large sizes.
  // (mod-p only: the EC group is fixed, not generated.)
  static GroupParams generate(std::size_t bits, mpz::Prng& prng);
  // Explicit mod-p values; validates p = 2q+1, primality (with `prng`), and
  // that g generates the order-q subgroup. Throws std::invalid_argument.
  static GroupParams from_values(Bigint p, Bigint q, Bigint g, mpz::Prng& prng);
  // Explicit mod-p values with structural checks only (p = 2q+1, g^q == 1) —
  // for material loaded from trusted local storage where primality was
  // already established. Throws std::invalid_argument on structural
  // violations.
  static GroupParams from_values_trusted(Bigint p, Bigint q, Bigint g);

  // Which backend this group runs on.
  [[nodiscard]] Kind backend_kind() const { return impl_->kind(); }
  [[nodiscard]] std::string_view backend_name() const { return impl_->name(); }

  // Field modulus (mod-p: p; ec255: 2^255 - 19, display/transcript use only).
  [[nodiscard]] const Bigint& p() const { return impl_->p(); }
  // Prime group order.
  [[nodiscard]] const Bigint& q() const { return impl_->q(); }
  // Canonical encoding of the generator.
  [[nodiscard]] const Bigint& g() const { return impl_->g(); }
  [[nodiscard]] std::size_t bits() const { return impl_->bits(); }

  // Canonical encoding of the neutral element (mod-p: 1; ec255: 0).
  [[nodiscard]] Bigint identity() const { return impl_->identity(); }
  [[nodiscard]] bool is_identity(const Bigint& x) const { return x == impl_->identity(); }

  // True iff x is a canonical group-element encoding (mod-p: nonzero QR).
  [[nodiscard]] bool in_group(const Bigint& x) const { return impl_->in_group(x); }
  // Cheap wire well-formedness check (mod-p: x in [1, p-1]; ec255: same as
  // in_group — every canonical encoding is an element).
  [[nodiscard]] bool in_zp_star(const Bigint& x) const { return impl_->in_zp_star(x); }
  // True iff x in [0, q).
  [[nodiscard]] bool is_exponent(const Bigint& x) const {
    return !x.is_negative() && x < impl_->q();
  }

  // g^e (e reduced mod q first).
  [[nodiscard]] Bigint pow_g(const Bigint& e) const { return impl_->pow_g(e); }
  // b^e.
  [[nodiscard]] Bigint pow(const Bigint& b, const Bigint& e) const {
    return impl_->pow(b, e);
  }
  // b^e through a per-base fixed-base table, built on first use and shared
  // across all copies of this GroupParams (and threads). Meant for long-lived
  // bases — service public keys, encryption commitments — that each see many
  // verification exponentiations. The cache is capped; overflow falls back to
  // pow(). Semantically identical to pow().
  [[nodiscard]] Bigint pow_cached(const Bigint& b, const Bigint& e) const {
    return impl_->pow_cached(b, e);
  }
  // Pins `b` as a protocol base: builds a wide (5-bit window) comb table for
  // it once per key epoch, shared const thereafter across all copies of this
  // GroupParams (and threads). Unlike pow_cached's capped on-demand map, the
  // pinned set grows only through explicit pins — a hostile peer spraying
  // fresh bases cannot touch it. Idempotent; pinning g itself is a no-op
  // (pow_g already combs it). Called by ProtocolServer for y_A, y_B and
  // y_A·y_B, and by PedersenParams for h.
  void pin_base(const Bigint& b) const { impl_->pin_base(b); }
  // b^e through the pinned comb table when `b` was pinned (or is g);
  // otherwise a plain pow() — never inserts into any cache, so it is safe on
  // the prover hot path even for ad-hoc bases. Semantically identical to
  // pow().
  [[nodiscard]] Bigint pow_fixed(const Bigint& b, const Bigint& e) const {
    return impl_->pow_fixed(b, e);
  }
  // Group operation a·b.
  [[nodiscard]] Bigint mul(const Bigint& a, const Bigint& b) const {
    return impl_->mul(a, b);
  }
  // a^ea · b^eb (Shamir's trick; exponents reduced mod q).
  [[nodiscard]] Bigint pow2(const Bigint& a, const Bigint& ea, const Bigint& b,
                            const Bigint& eb) const {
    return impl_->pow2(a, ea, b, eb);
  }
  // Π bases[i]^{exps[i]} (interleaved multi-exponentiation / Pippenger).
  // Exponents must already be in [0, q).
  [[nodiscard]] Bigint multi_pow(std::span<const Bigint> bases,
                                 std::span<const Bigint> exps) const {
    return impl_->multi_pow(bases, exps);
  }
  // Group inverse a^{-1}.
  [[nodiscard]] Bigint inv(const Bigint& a) const { return impl_->inv(a); }

  // Epoch-boundary invalidation (core/reconfig): drops every on-demand
  // pow_cached table AND every pinned comb except g's own. Bases tied to a
  // retired configuration (old commitment points, per-epoch aggregates) must
  // not survive an epoch install; callers re-pin the protocol bases that are
  // still live afterwards. Shared across all copies of this GroupParams, so
  // one server's install clears the process-wide cache — semantically a
  // no-op (pow_cached/pow_fixed degrade to pow()), never a safety issue.
  void reset_base_caches() const { impl_->reset_base_caches(); }
  // Table counts (tests/observability): on-demand and pinned respectively.
  [[nodiscard]] std::size_t cached_table_count() const {
    return impl_->cached_table_count();
  }
  [[nodiscard]] std::size_t pinned_table_count() const {
    return impl_->pinned_table_count();
  }

  // Uniformly random group element (random exponent applied to g).
  [[nodiscard]] Bigint random_element(mpz::Prng& prng) const {
    return impl_->pow_g(random_exponent(prng));
  }
  // Uniformly random exponent in [1, q).
  [[nodiscard]] Bigint random_exponent(mpz::Prng& prng) const {
    return prng.uniform_nonzero_below(impl_->q());
  }

  // Deterministically derives a group element from a label such that nobody
  // knows its discrete log w.r.t. g (mod-p: hash, reduce, square into the QR
  // subgroup; ec255: the RFC 9496 one-way map). Used e.g. as the second base
  // `h` of Pedersen commitments.
  [[nodiscard]] Bigint hash_to_group(std::string_view label) const {
    return impl_->hash_to_group(label);
  }

  // -- Message encoding (§3 requires m ∈ G_p) -------------------------------
  //
  // Injective value -> element embedding, inverted by decode_message. Valid
  // inputs are [1, max_message_value()] (mod-p: q, via the QR-or-negate map;
  // ec255: 2^232 - 1, embedded in the canonical encoding's payload bytes).
  // Throws std::invalid_argument outside that range.
  [[nodiscard]] Bigint encode_message(const Bigint& v) const {
    return impl_->encode_message(v);
  }
  [[nodiscard]] Bigint decode_message(const Bigint& elem) const {
    return impl_->decode_message(elem);
  }
  [[nodiscard]] const Bigint& max_message_value() const {
    return impl_->max_message_value();
  }
  // Convenience: encode/decode short byte strings (must fit below
  // max_message_value once framed).
  [[nodiscard]] Bigint encode_bytes(std::span<const std::uint8_t> bytes) const;
  [[nodiscard]] std::vector<std::uint8_t> decode_bytes(const Bigint& elem) const;

  // Canonical serialized form of an element (mod-p: fixed-width big-endian
  // residue; ec255: the 32-byte RFC 9496 encoding), used in hashes and
  // message encodings.
  [[nodiscard]] std::vector<std::uint8_t> element_bytes(const Bigint& x) const {
    return impl_->element_bytes(x);
  }
  [[nodiscard]] std::size_t element_size() const { return impl_->element_size(); }

  // Deterministic group-op counter shared by all copies of this GroupParams:
  // Montgomery multiplications (mod-p) or field multiplications (ec255). The
  // bench regression gates diff this across runs.
  [[nodiscard]] std::uint64_t group_op_count() const { return impl_->op_count(); }
  // The underlying counter cell (valid while any copy of this GroupParams is
  // alive) — lets obs::ScopedCounterDelta attribute group ops to a protocol
  // phase without repeated lookups.
  [[nodiscard]] const std::atomic<std::uint64_t>* group_op_cell() const {
    return impl_->op_cell();
  }
  // Approximate 64x64-bit word multiplications per counted op — the common
  // unit for cross-backend cost comparisons (bench_check PR 10 gate).
  [[nodiscard]] std::uint64_t op_cost_weight() const { return impl_->op_cost_weight(); }

  // Historical aliases (every pre-backend call site counted mont-muls; on
  // the EC backend these count field muls instead).
  [[nodiscard]] std::uint64_t mont_mul_count() const { return impl_->op_count(); }
  [[nodiscard]] const std::atomic<std::uint64_t>* mont_mul_cell() const {
    return impl_->op_cell();
  }

  friend bool operator==(const GroupParams& a, const GroupParams& b) {
    return a.impl_->kind() == b.impl_->kind() && a.impl_->p() == b.impl_->p() &&
           a.impl_->g() == b.impl_->g();
  }

 private:
  explicit GroupParams(std::shared_ptr<const backend::Group> impl)
      : impl_(std::move(impl)) {}

  // Shared so that copies of GroupParams (passed around freely by services,
  // servers, and messages) reuse one backend instance — one Montgomery
  // context / comb-table cache / op counter per group.
  std::shared_ptr<const backend::Group> impl_;
};

}  // namespace dblind::group
