// Safe-prime group parameters for ElGamal.
//
// The paper (§3) fixes large primes p, q with p = 2q + 1 and works in the
// cyclic subgroup G_p ⊆ Z_p* of order q, with generator g. All services
// share one parameter set; only the key pairs differ.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/sync.hpp"
#include "mpz/bigint.hpp"
#include "mpz/montgomery.hpp"
#include "mpz/random.hpp"

namespace dblind::group {

using mpz::Bigint;

// Named, pre-generated parameter sets (safe primes found once offline with
// 40-round Miller-Rabin; see tests/group/params_test.cpp for re-verification).
enum class ParamId : std::uint8_t {
  kToy64 = 0,  // tests only — breakable, never for real secrets
  kTest128,
  kTest256,
  kSec512,
  kSec1024,  // "realistic" for the paper's 2005 setting
  kSec2048,
};

class GroupParams {
 public:
  // Fixed named parameters; cheap (values are embedded constants).
  static GroupParams named(ParamId id);
  // Fresh safe-prime group of `bits` bits; expensive for large sizes.
  static GroupParams generate(std::size_t bits, mpz::Prng& prng);
  // Explicit values; validates p = 2q+1, primality (with `prng`), and that
  // g generates the order-q subgroup. Throws std::invalid_argument.
  static GroupParams from_values(Bigint p, Bigint q, Bigint g, mpz::Prng& prng);
  // Explicit values with structural checks only (p = 2q+1, g^q == 1) — for
  // material loaded from trusted local storage where primality was already
  // established. Throws std::invalid_argument on structural violations.
  static GroupParams from_values_trusted(Bigint p, Bigint q, Bigint g);

  [[nodiscard]] const Bigint& p() const { return p_; }
  [[nodiscard]] const Bigint& q() const { return q_; }
  [[nodiscard]] const Bigint& g() const { return g_; }
  [[nodiscard]] std::size_t bits() const { return p_.bit_length(); }

  // True iff x is in the order-q subgroup G_p (i.e. x is a nonzero quadratic
  // residue mod p).
  [[nodiscard]] bool in_group(const Bigint& x) const;
  // True iff x in [1, p-1].
  [[nodiscard]] bool in_zp_star(const Bigint& x) const;
  // True iff x in [0, q).
  [[nodiscard]] bool is_exponent(const Bigint& x) const;

  // g^e mod p (e reduced mod q first).
  [[nodiscard]] Bigint pow_g(const Bigint& e) const;
  // b^e mod p.
  [[nodiscard]] Bigint pow(const Bigint& b, const Bigint& e) const;
  // b^e mod p through a per-base FixedBasePow table, built on first use and
  // shared across all copies of this GroupParams (and threads). Meant for
  // long-lived bases — service public keys, encryption commitments — that
  // each see many verification exponentiations. The cache is capped; overflow
  // falls back to pow(). Semantically identical to pow().
  [[nodiscard]] Bigint pow_cached(const Bigint& b, const Bigint& e) const;
  // Pins `b` as a protocol base: builds a wide (5-bit window) comb table for
  // it once per key epoch, shared const thereafter across all copies of this
  // GroupParams (and threads). Unlike pow_cached's capped on-demand map, the
  // pinned set grows only through explicit pins — a hostile peer spraying
  // fresh bases cannot touch it. Idempotent; pinning g itself is a no-op
  // (pow_g already combs it). Called by ProtocolServer for y_A, y_B and
  // y_A·y_B, and by PedersenParams for h.
  void pin_base(const Bigint& b) const;
  // b^e mod p through the pinned comb table when `b` was pinned (or is g);
  // otherwise a plain pow() — never inserts into any cache, so it is safe on
  // the prover hot path even for ad-hoc bases. Semantically identical to
  // pow().
  [[nodiscard]] Bigint pow_fixed(const Bigint& b, const Bigint& e) const;
  // a*b mod p.
  [[nodiscard]] Bigint mul(const Bigint& a, const Bigint& b) const;
  // a^ea * b^eb mod p (Shamir's trick; exponents reduced mod q).
  [[nodiscard]] Bigint pow2(const Bigint& a, const Bigint& ea, const Bigint& b,
                            const Bigint& eb) const;
  // Π bases[i]^{exps[i]} mod p (interleaved multi-exponentiation). Bases are
  // reduced mod p; exponents must already be in [0, q).
  [[nodiscard]] Bigint multi_pow(std::span<const Bigint> bases,
                                 std::span<const Bigint> exps) const;
  // a^{-1} mod p.
  [[nodiscard]] Bigint inv(const Bigint& a) const;

  // Epoch-boundary invalidation (core/reconfig): drops every on-demand
  // pow_cached table AND every pinned comb except g's own. Bases tied to a
  // retired configuration (old commitment points, per-epoch aggregates) must
  // not survive an epoch install; callers re-pin the protocol bases that are
  // still live afterwards. Shared across all copies of this GroupParams, so
  // one server's install clears the process-wide cache — semantically a
  // no-op (pow_cached/pow_fixed degrade to pow()), never a safety issue.
  void reset_base_caches() const;
  // Table counts (tests/observability): on-demand and pinned respectively.
  [[nodiscard]] std::size_t cached_table_count() const;
  [[nodiscard]] std::size_t pinned_table_count() const;

  // Uniformly random group element (random exponent applied to g).
  [[nodiscard]] Bigint random_element(mpz::Prng& prng) const;
  // Uniformly random exponent in [1, q).
  [[nodiscard]] Bigint random_exponent(mpz::Prng& prng) const;

  // Deterministically derives a group element from a label such that nobody
  // knows its discrete log w.r.t. g (hash, reduce mod p, square into the QR
  // subgroup). Used e.g. as the second base `h` of Pedersen commitments.
  [[nodiscard]] Bigint hash_to_group(std::string_view label) const;

  // -- Message encoding (§3 requires m ∈ G_p) -------------------------------
  //
  // For p = 2q+1 every value v in [1, q] maps injectively into the QR
  // subgroup as: v if v is a QR mod p, else p - v. Decoding inverts the map.
  // Throws std::invalid_argument when v is outside [1, q].
  [[nodiscard]] Bigint encode_message(const Bigint& v) const;
  [[nodiscard]] Bigint decode_message(const Bigint& elem) const;
  // Convenience: encode/decode short byte strings (must fit below q).
  [[nodiscard]] Bigint encode_bytes(std::span<const std::uint8_t> bytes) const;
  [[nodiscard]] std::vector<std::uint8_t> decode_bytes(const Bigint& elem) const;

  // Canonical serialized form of an element (fixed-width big-endian), used in
  // hashes and message encodings.
  [[nodiscard]] std::vector<std::uint8_t> element_bytes(const Bigint& x) const;
  [[nodiscard]] std::size_t element_size() const { return (bits() + 7) / 8; }

  // Montgomery multiplications performed through this modulus' shared context
  // (all GroupParams copies with the same p count into one total). The bench
  // regression gate diffs this across batched/serial verification runs.
  [[nodiscard]] std::uint64_t mont_mul_count() const;
  // The underlying counter cell (valid while any copy of this GroupParams
  // is alive) — lets obs::ScopedCounterDelta attribute mont-muls to a
  // protocol phase without repeated shared-context lookups.
  [[nodiscard]] const std::atomic<std::uint64_t>* mont_mul_cell() const;

  friend bool operator==(const GroupParams& a, const GroupParams& b) {
    return a.p_ == b.p_ && a.g_ == b.g_;
  }

 private:
  GroupParams(Bigint p, Bigint q, Bigint g);

  Bigint p_, q_, g_;
  // Shared so that copies of GroupParams (passed around freely by services,
  // servers, and messages) reuse one Montgomery context per modulus.
  std::shared_ptr<const mpz::MontgomeryCtx> mont_;
  // Lazily-built fixed-base table for g (pow_g is the hottest operation in
  // the protocol). Guarded by call_once so copies shared across threads
  // (e.g. under net::ThreadedBus) build it exactly once. Declared after
  // mont_ so the table (which references *mont_) is destroyed first.
  struct FixedBaseCache {
    // g's comb table: written exactly once through call_once (an ordering
    // primitive the thread-safety analysis does not model), const
    // thereafter; readers go through the same call_once barrier.
    std::once_flag once;
    std::unique_ptr<const mpz::FixedBasePow> g_pow;
    // pow_cached() tables for other long-lived bases (public keys, encryption
    // commitments), built on demand under `mu` and capped at kMaxEntries so a
    // hostile peer spraying fresh bases cannot balloon memory.
    static constexpr std::size_t kMaxEntries = 64;
    Mutex mu;
    std::map<Bigint, std::shared_ptr<const mpz::FixedBasePow>> tables GUARDED_BY(mu);
    // pin_base() tables: wide-window combs for the handful of protocol bases
    // (h, y_A, y_B, y_A·y_B). Uncapped because only explicit pins enter.
    static constexpr std::size_t kPinnedWindowBits = 5;
    std::map<Bigint, std::shared_ptr<const mpz::FixedBasePow>> pinned GUARDED_BY(mu);
  };
  std::shared_ptr<FixedBaseCache> g_cache_;
};

}  // namespace dblind::group
