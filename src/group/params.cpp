#include "group/params.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "group/backend_ec.hpp"
#include "group/backend_modp.hpp"
#include "mpz/modmath.hpp"
#include "mpz/prime.hpp"

namespace dblind::group {

namespace {

struct NamedParams {
  const char* p_hex;
  const char* q_hex;
};

// Safe primes generated offline (seeded search, 40 Miller-Rabin rounds each
// for both q and p = 2q+1). g = 4 = 2^2 is always a generator of the order-q
// QR subgroup for safe primes p > 5: its order divides q (it is a square) and
// is not 1, and q is prime.
constexpr const char* kP64 = "f60100fb3362b19f";
constexpr const char* kQ64 = "7b00807d99b158cf";
constexpr const char* kP128 = "fe223d80ef19da04fef96e1894377f43";
constexpr const char* kQ128 = "7f111ec0778ced027f7cb70c4a1bbfa1";
constexpr const char* kP256 =
    "fc7fb60b74845770ea35c5cacef5191b0634d65fb8cfbb233eb4908e654edd8f";
constexpr const char* kQ256 =
    "7e3fdb05ba422bb8751ae2e5677a8c8d831a6b2fdc67dd919f5a484732a76ec7";
constexpr const char* kP512 =
    "8c1776c575241cbbd7faeab6bbc168fa67a22e08ffb74a1d4d136e0a17d38fce"
    "69679bea9e59b2516d1a79a83d3ae604357dd72d91fc58738907e0e74c5d8d9b";
constexpr const char* kQ512 =
    "460bbb62ba920e5debfd755b5de0b47d33d117047fdba50ea689b7050be9c7e7"
    "34b3cdf54f2cd928b68d3cd41e9d73021abeeb96c8fe2c39c483f073a62ec6cd";
constexpr const char* kP1024 =
    "8f9ff3b2038cc62b8113e7b60aac50bad27a547410e1871571bcf4507769c29f"
    "d844a9a29ea27db7e1c4c8817f1489523d17ad3ad87ad118fda5e985fb9ab870"
    "34b9dd43cee164ac472eb7ae79adaa938449e23af721ade9dbe094a0e9a391f4"
    "a2dab487b3dda116dfa24e4dcbfb01917ce42d4fd0e3413f3a37e518a2ecf98f";
constexpr const char* kQ1024 =
    "47cff9d901c66315c089f3db0556285d693d2a3a0870c38ab8de7a283bb4e14f"
    "ec2254d14f513edbf0e26440bf8a44a91e8bd69d6c3d688c7ed2f4c2fdcd5c38"
    "1a5ceea1e770b25623975bd73cd6d549c224f11d7b90d6f4edf04a5074d1c8fa"
    "516d5a43d9eed08b6fd12726e5fd80c8be7216a7e871a09f9d1bf28c51767cc7";
constexpr const char* kP2048 =
    "ae381ceab68e499cf4ff91a77d5dfddf73877eaa170e7eeff49464bfbf534fca"
    "271a831f95cc6d96ac3fdec39d0195f67f47a792834e7ee1cb685250842cac64"
    "81c449e465387cc526454f76923c92324d04266e6f74a53131b4da4977262e0a"
    "b3ec0adc639640deb071b7aa35a76fc612bd2cbe3e39e8b54f3379325d9852fe"
    "1cbecb0bee58212e662c959c0b02e4e66b2d544cae956d963203b6e9c866530d"
    "fbf51593e117a14a1ad5ae24c3564cd9cd9177a9d5bed66a687507d025db55a5"
    "10df8c4993aefb468933aed12a6e9aa6085e8103c9fd16c9503e63c52595b833"
    "10c8d928784e58b7c564b63c489cd9481f604336bd9b85017a1cea1d57ab189f";
constexpr const char* kQ2048 =
    "571c0e755b4724ce7a7fc8d3beaefeefb9c3bf550b873f77fa4a325fdfa9a7e5"
    "138d418fcae636cb561fef61ce80cafb3fa3d3c941a73f70e5b4292842165632"
    "40e224f2329c3e629322a7bb491e49192682133737ba529898da6d24bb931705"
    "59f6056e31cb206f5838dbd51ad3b7e3095e965f1f1cf45aa799bc992ecc297f"
    "0e5f6585f72c109733164ace058172733596aa26574ab6cb1901db74e4332986"
    "fdfa8ac9f08bd0a50d6ad71261ab266ce6c8bbd4eadf6b35343a83e812edaad2"
    "886fc624c9d77da34499d76895374d53042f4081e4fe8b64a81f31e292cadc19"
    "88646c943c272c5be2b25b1e244e6ca40fb0219b5ecdc280bd0e750eabd58c4f";

NamedParams lookup(ParamId id) {
  switch (id) {
    case ParamId::kToy64: return {kP64, kQ64};
    case ParamId::kTest128: return {kP128, kQ128};
    case ParamId::kTest256: return {kP256, kQ256};
    case ParamId::kSec512: return {kP512, kQ512};
    case ParamId::kSec1024: return {kP1024, kQ1024};
    case ParamId::kSec2048: return {kP2048, kQ2048};
    case ParamId::kEc255: break;  // handled by the caller
  }
  throw std::invalid_argument("GroupParams::named: unknown ParamId");
}

}  // namespace

namespace {

std::shared_ptr<const backend::Group> make_modp(Bigint p, Bigint q, Bigint g) {
  return std::make_shared<const backend::ModP>(std::move(p), std::move(q), std::move(g));
}

}  // namespace

GroupParams GroupParams::named(ParamId id) {
  if (id == ParamId::kEc255)
    return GroupParams(std::make_shared<const backend::Ec>());
  NamedParams np = lookup(id);
  return GroupParams(make_modp(Bigint::from_hex(np.p_hex), Bigint::from_hex(np.q_hex), Bigint(4)));
}

GroupParams GroupParams::named_or_env(ParamId id) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once at setup, never written
  const char* backend = std::getenv("DBLIND_BACKEND");
  if (backend != nullptr) {
    std::string_view v(backend);
    if (v == "ec" || v == "ec255") return named(ParamId::kEc255);
    if (!v.empty() && v != "modp")
      throw std::invalid_argument("DBLIND_BACKEND: expected 'ec', 'ec255' or 'modp'");
  }
  return named(id);
}

GroupParams GroupParams::generate(std::size_t bits, mpz::Prng& prng) {
  mpz::SafePrime sp = mpz::generate_safe_prime(bits, prng);
  return GroupParams(make_modp(std::move(sp.p), std::move(sp.q), Bigint(4)));
}

GroupParams GroupParams::from_values_trusted(Bigint p, Bigint q, Bigint g) {
  if (p != q.shl(1) + Bigint(1))
    throw std::invalid_argument("GroupParams: p != 2q + 1");
  if (g <= Bigint(1) || g >= p)
    throw std::invalid_argument("GroupParams: generator out of range");
  if (mpz::powmod(g, q, p) != Bigint(1))
    throw std::invalid_argument("GroupParams: g does not have order dividing q");
  return GroupParams(make_modp(std::move(p), std::move(q), std::move(g)));
}

GroupParams GroupParams::from_values(Bigint p, Bigint q, Bigint g, mpz::Prng& prng) {
  if (p != q.shl(1) + Bigint(1))
    throw std::invalid_argument("GroupParams: p != 2q + 1");
  if (!mpz::is_probable_prime(q, prng) || !mpz::is_probable_prime(p, prng))
    throw std::invalid_argument("GroupParams: p or q not prime");
  if (g <= Bigint(1) || g >= p)
    throw std::invalid_argument("GroupParams: generator out of range");
  if (mpz::powmod(g, q, p) != Bigint(1))
    throw std::invalid_argument("GroupParams: g does not have order dividing q");
  return GroupParams(make_modp(std::move(p), std::move(q), std::move(g)));
}

Bigint GroupParams::encode_bytes(std::span<const std::uint8_t> bytes) const {
  // Prefix a 0x01 sentinel byte at the most-significant end so that leading
  // zero bytes of the payload survive the integer round trip.
  std::vector<std::uint8_t> framed(bytes.size() + 1);
  framed[0] = 0x01;
  std::copy(bytes.begin(), bytes.end(), framed.begin() + 1);
  Bigint v = Bigint::from_bytes_be(framed);
  if (v > max_message_value())
    throw std::invalid_argument("encode_bytes: payload too large for group");
  return encode_message(v);
}

std::vector<std::uint8_t> GroupParams::decode_bytes(const Bigint& elem) const {
  Bigint v = decode_message(elem);
  std::vector<std::uint8_t> framed = v.to_bytes_be();
  if (framed.empty() || framed[0] != 0x01)
    throw std::invalid_argument("decode_bytes: missing sentinel");
  return {framed.begin() + 1, framed.end()};
}

}  // namespace dblind::group
