// ristretto255: a prime-order group over Curve25519 (RFC 9496).
//
// Points live on the twisted Edwards curve -x^2 + y^2 = 1 + d x^2 y^2 over
// GF(2^255-19) in extended homogeneous coordinates (X:Y:Z:T) with x = X/Z,
// y = Y/Z, x*y = T/Z. The Ristretto encoding quotients out the {±1, ±i}
// torsion so the abstraction exposed here is a clean prime-order group of
// order ell = 2^252 + 27742317777372353535851937790883648493 with canonical
// 32-byte encodings: every group element has exactly one valid encoding, and
// decode rejects everything else (non-canonical field element, negative s,
// off-curve / wrong-coset values). That canonicality is what lets the group
// backend box encodings in Bigint and hash them into transcripts directly.
//
// Scalar multiplication uses 4-bit fixed windows; fixed bases get comb tables
// mirroring mpz::FixedBasePow; multi-scalar-mul interleaves Straus windows
// for small batches and switches to Pippenger buckets for wide ones —
// the same shape as the mod-p machinery in mpz/montgomery.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mpz/fe25519.hpp"

namespace dblind::group::ec {

using mpz::Fe25519;

// 32-byte little-endian scalar, already reduced below the group order.
using ScalarBytes = std::array<std::uint8_t, 32>;
// Canonical 32-byte ristretto255 element encoding.
using EncodedPoint = std::array<std::uint8_t, 32>;

struct Point {
  Fe25519 X, Y, Z, T;
};

// Group order ell as little-endian bytes (= 2^252 + 27742...493).
const ScalarBytes& group_order_le();

[[nodiscard]] Point identity();
[[nodiscard]] const Point& base_point();

[[nodiscard]] Point add(const Point& a, const Point& b);
[[nodiscard]] Point dbl(const Point& a);
[[nodiscard]] Point neg(const Point& a);
// Ristretto equality (coset-aware; NOT coordinate equality).
[[nodiscard]] bool eq(const Point& a, const Point& b);
[[nodiscard]] bool is_identity(const Point& a);

// Canonical encoding; decode(encode(P)) == P and encode(decode(s)) == s.
[[nodiscard]] EncodedPoint encode(const Point& a);
// Rejects non-canonical / invalid encodings with nullopt.
[[nodiscard]] std::optional<Point> decode(std::span<const std::uint8_t, 32> in);

// scalar * P, 4-bit windowed double-and-add (top-down).
[[nodiscard]] Point scalar_mul(const Point& base, const ScalarBytes& scalar);

// One-way map: 64 uniform bytes -> group element (RFC 9496 §4.3.4, two
// Elligator 2 maps added together). Nobody learns a discrete log from it.
[[nodiscard]] Point map_to_point(std::span<const std::uint8_t, 64> uniform);

// Fixed-base comb: table[i][j] = (j << (w*i)) * base, so a 253-bit scalar
// costs ceil(253/w) point additions and zero doublings (mirrors
// mpz::FixedBasePow for the mod-p backend).
class CombTable {
 public:
  CombTable(const Point& base, unsigned window_bits);
  [[nodiscard]] Point mul(const ScalarBytes& scalar) const;

 private:
  unsigned window_;
  std::vector<std::vector<Point>> table_;  // [digit position][digit value]
};

// sum scalars[i] * bases[i]. Straus interleaving for <= kStrausMaxBases
// bases, Pippenger buckets beyond (same crossover policy as
// MontgomeryCtx::multi_pow).
inline constexpr std::size_t kStrausMaxBases = 8;
[[nodiscard]] Point multi_scalar_mul(std::span<const Point> bases,
                                     std::span<const ScalarBytes> scalars);

}  // namespace dblind::group::ec
