// Safe-prime Z_p* backend: the original GroupParams arithmetic, verbatim,
// behind the backend::Group interface. p = 2q + 1, elements live in the
// order-q quadratic-residue subgroup, g = 4 for the named parameter sets.
// Kept bit-identical to the pre-backend code — it is the differential oracle
// the EC backend is tested against, and the default build's behavior must
// not move.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "core/sync.hpp"
#include "group/backend.hpp"
#include "mpz/montgomery.hpp"

namespace dblind::group::backend {

class ModP final : public Group {
 public:
  ModP(Bigint p, Bigint q, Bigint g);

  [[nodiscard]] Kind kind() const override { return Kind::kModP; }
  [[nodiscard]] std::string_view name() const override { return "modp"; }
  [[nodiscard]] const Bigint& p() const override { return p_; }
  [[nodiscard]] const Bigint& q() const override { return q_; }
  [[nodiscard]] const Bigint& g() const override { return g_; }
  [[nodiscard]] std::size_t bits() const override { return p_.bit_length(); }

  [[nodiscard]] Bigint identity() const override { return Bigint(1); }
  [[nodiscard]] bool in_group(const Bigint& x) const override;
  [[nodiscard]] bool in_zp_star(const Bigint& x) const override;

  [[nodiscard]] Bigint pow_g(const Bigint& e) const override;
  [[nodiscard]] Bigint pow(const Bigint& b, const Bigint& e) const override;
  [[nodiscard]] Bigint pow_cached(const Bigint& b, const Bigint& e) const override;
  void pin_base(const Bigint& b) const override;
  [[nodiscard]] Bigint pow_fixed(const Bigint& b, const Bigint& e) const override;
  [[nodiscard]] Bigint mul(const Bigint& a, const Bigint& b) const override;
  [[nodiscard]] Bigint pow2(const Bigint& a, const Bigint& ea, const Bigint& b,
                            const Bigint& eb) const override;
  [[nodiscard]] Bigint multi_pow(std::span<const Bigint> bases,
                                 std::span<const Bigint> exps) const override;
  [[nodiscard]] Bigint inv(const Bigint& a) const override;

  void reset_base_caches() const override;
  [[nodiscard]] std::size_t cached_table_count() const override;
  [[nodiscard]] std::size_t pinned_table_count() const override;

  [[nodiscard]] Bigint hash_to_group(std::string_view label) const override;
  [[nodiscard]] Bigint encode_message(const Bigint& v) const override;
  [[nodiscard]] Bigint decode_message(const Bigint& elem) const override;
  [[nodiscard]] const Bigint& max_message_value() const override { return q_; }

  [[nodiscard]] std::vector<std::uint8_t> element_bytes(const Bigint& x) const override;
  [[nodiscard]] std::size_t element_size() const override { return (bits() + 7) / 8; }

  [[nodiscard]] std::uint64_t op_count() const override { return mont_.mul_count(); }
  [[nodiscard]] const std::atomic<std::uint64_t>* op_cell() const override {
    return &mont_.mul_count_cell();
  }
  // One Montgomery multiplication on a k-limb modulus is k*k word
  // multiplications for the product plus about the same again for the
  // reduction: ~2k^2.
  [[nodiscard]] std::uint64_t op_cost_weight() const override {
    const std::uint64_t k = (bits() + 63) / 64;
    return 2 * k * k;
  }

 private:
  Bigint p_, q_, g_;
  mpz::MontgomeryCtx mont_;
  // Lazily-built fixed-base tables (see GroupParams docs; semantics are
  // unchanged from the pre-backend FixedBaseCache).
  struct FixedBaseCache {
    std::once_flag once;
    std::unique_ptr<const mpz::FixedBasePow> g_pow;
    static constexpr std::size_t kMaxEntries = 64;
    mutable Mutex mu;
    mutable std::map<Bigint, std::shared_ptr<const mpz::FixedBasePow>> tables GUARDED_BY(mu);
    static constexpr std::size_t kPinnedWindowBits = 5;
    mutable std::map<Bigint, std::shared_ptr<const mpz::FixedBasePow>> pinned GUARDED_BY(mu);
  };
  mutable FixedBaseCache cache_;
};

}  // namespace dblind::group::backend
