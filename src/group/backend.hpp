// Backend-neutral group interface.
//
// Every protocol layer (ElGamal, Chaum-Pedersen/VDE, Schnorr, Feldman/
// Pedersen VSS, threshold decrypt, re-sharing) is generic algebra over a
// cyclic group of prime order q: elements, mul, pow, multi-pow, canonical
// encode/decode. `GroupParams` (group/params.hpp) stays the facade every
// call site uses; it delegates to one of these backends:
//
//   backend::ModP  — the original safe-prime Z_p* QR subgroup (p = 2q+1,
//                    Montgomery arithmetic, 512–2048-bit elements). The
//                    differential oracle.
//   backend::Ec    — ristretto255: a prime-order group over Curve25519 with
//                    32-byte canonical encodings (group/ristretto.hpp).
//
// Elements are boxed as `Bigint` holding the backend's canonical encoding —
// a mod-p residue, or the ristretto 32-byte string interpreted as a
// little-endian integer. Group order scalars are plain Bigints mod q in both
// backends, so exponent arithmetic (Shamir shares, challenges, blinding
// factors) is backend-independent. Canonical encodings mean boxed elements
// can be compared, map-keyed, serialized, and hashed into transcripts without
// knowing the backend.
//
// Op-count instrumentation mirrors MontgomeryCtx::mul_count(): op_count()
// counts Montgomery multiplications (ModP) or field multiplications (Ec);
// op_cost_weight() converts either into approximate 64x64-bit word
// multiplications so cross-backend bench gates compare a common unit.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "mpz/bigint.hpp"
#include "mpz/random.hpp"

namespace dblind::group::backend {

using mpz::Bigint;

enum class Kind : std::uint8_t {
  kModP = 0,
  kEc255 = 1,
};

class Group {
 public:
  virtual ~Group() = default;

  [[nodiscard]] virtual Kind kind() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;

  // Field modulus (ModP: p; Ec: 2^255 - 19). Only used for transcript
  // domain separation and display — element validity goes through in_group.
  [[nodiscard]] virtual const Bigint& p() const = 0;
  // Prime group order q.
  [[nodiscard]] virtual const Bigint& q() const = 0;
  // Canonical encoding of the generator.
  [[nodiscard]] virtual const Bigint& g() const = 0;
  [[nodiscard]] virtual std::size_t bits() const = 0;

  // Canonical encoding of the neutral element (ModP: 1; Ec: 0, the all-zero
  // ristretto encoding). Call sites must use this instead of Bigint(1).
  [[nodiscard]] virtual Bigint identity() const = 0;
  [[nodiscard]] virtual bool in_group(const Bigint& x) const = 0;
  // Cheap well-formedness check for wire values (ModP: x in [1, p-1]; Ec:
  // same as in_group — every canonical encoding is a group element).
  [[nodiscard]] virtual bool in_zp_star(const Bigint& x) const = 0;

  [[nodiscard]] virtual Bigint pow_g(const Bigint& e) const = 0;
  [[nodiscard]] virtual Bigint pow(const Bigint& b, const Bigint& e) const = 0;
  [[nodiscard]] virtual Bigint pow_cached(const Bigint& b, const Bigint& e) const = 0;
  virtual void pin_base(const Bigint& b) const = 0;
  [[nodiscard]] virtual Bigint pow_fixed(const Bigint& b, const Bigint& e) const = 0;
  [[nodiscard]] virtual Bigint mul(const Bigint& a, const Bigint& b) const = 0;
  [[nodiscard]] virtual Bigint pow2(const Bigint& a, const Bigint& ea, const Bigint& b,
                                    const Bigint& eb) const = 0;
  [[nodiscard]] virtual Bigint multi_pow(std::span<const Bigint> bases,
                                         std::span<const Bigint> exps) const = 0;
  // Group inverse (ModP: a^-1 mod p; Ec: point negation).
  [[nodiscard]] virtual Bigint inv(const Bigint& a) const = 0;

  virtual void reset_base_caches() const = 0;
  [[nodiscard]] virtual std::size_t cached_table_count() const = 0;
  [[nodiscard]] virtual std::size_t pinned_table_count() const = 0;

  [[nodiscard]] virtual Bigint hash_to_group(std::string_view label) const = 0;

  // Injective value -> element embedding; inverse of decode_message. The
  // valid input range is [1, max_message_value()].
  [[nodiscard]] virtual Bigint encode_message(const Bigint& v) const = 0;
  [[nodiscard]] virtual Bigint decode_message(const Bigint& elem) const = 0;
  [[nodiscard]] virtual const Bigint& max_message_value() const = 0;

  // Fixed-width canonical wire encoding (ModP: big-endian residue; Ec: the
  // 32-byte RFC 9496 encoding).
  [[nodiscard]] virtual std::vector<std::uint8_t> element_bytes(const Bigint& x) const = 0;
  [[nodiscard]] virtual std::size_t element_size() const = 0;

  // Deterministic op counter shared by all copies of the owning GroupParams.
  [[nodiscard]] virtual std::uint64_t op_count() const = 0;
  [[nodiscard]] virtual const std::atomic<std::uint64_t>* op_cell() const = 0;
  // Approximate 64x64 word-multiplications per counted op (bench gates use
  // op_count() * op_cost_weight() as the cross-backend cost unit).
  [[nodiscard]] virtual std::uint64_t op_cost_weight() const = 0;
};

}  // namespace dblind::group::backend
