#include "group/serialize.hpp"

#include <stdexcept>

#include "hash/sha256.hpp"

namespace dblind::group {

namespace {

constexpr std::uint8_t kGroupParamsTag = 0x11;    // mod-p: p, q, g payload
constexpr std::uint8_t kGroupParamsEcTag = 0x12;  // ec255: fixed group, no payload

}  // namespace

std::vector<std::uint8_t> group_params_to_bytes(const GroupParams& params) {
  common::Writer w;
  if (params.backend_kind() == backend::Kind::kEc255) {
    // The EC group is a fixed named curve; the tag alone identifies it, so
    // there are no values a peer could substitute.
    w.u8(kGroupParamsEcTag);
    return w.take();
  }
  w.u8(kGroupParamsTag);
  w.bigint(params.p());
  w.bigint(params.q());
  w.bigint(params.g());
  return w.take();
}

namespace {

struct RawParams {
  bool is_ec = false;
  Bigint p, q, g;
};

RawParams decode_raw(std::span<const std::uint8_t> bytes) {
  common::Reader r(bytes);
  const std::uint8_t tag = r.u8();
  RawParams raw;
  if (tag == kGroupParamsEcTag) {
    raw.is_ec = true;
    r.expect_done();
    return raw;
  }
  if (tag != kGroupParamsTag)
    throw common::CodecError("group_params: bad tag");
  raw.p = r.bigint();
  raw.q = r.bigint();
  raw.g = r.bigint();
  r.expect_done();
  return raw;
}

}  // namespace

GroupParams group_params_from_bytes(std::span<const std::uint8_t> bytes, mpz::Prng& prng) {
  RawParams raw = decode_raw(bytes);
  if (raw.is_ec) return GroupParams::named(ParamId::kEc255);
  return GroupParams::from_values(std::move(raw.p), std::move(raw.q), std::move(raw.g), prng);
}

GroupParams group_params_from_bytes_trusted(std::span<const std::uint8_t> bytes) {
  RawParams raw = decode_raw(bytes);
  if (raw.is_ec) return GroupParams::named(ParamId::kEc255);
  return GroupParams::from_values_trusted(std::move(raw.p), std::move(raw.q), std::move(raw.g));
}

std::string group_params_to_hex(const GroupParams& params) {
  return hash::to_hex(group_params_to_bytes(params));
}

GroupParams group_params_from_hex(std::string_view hex, mpz::Prng& prng) {
  return group_params_from_bytes(hash::from_hex(hex), prng);
}

}  // namespace dblind::group
