// Persistence for group/key/threshold material.
//
// A deployment needs to write service configuration to disk and ship public
// keys to clients. These functions give every public artifact a canonical,
// versioned byte encoding (and hex convenience wrappers). Decoding validates
// structure; `group_params_from_bytes` additionally re-validates the group
// (primality, generator order) because parameters usually cross trust
// boundaries.
#pragma once

#include <string>
#include <vector>

#include "common/codec.hpp"
#include "group/params.hpp"

namespace dblind::group {

// GroupParams <-> bytes. Encoding carries a format tag + p, q, g.
[[nodiscard]] std::vector<std::uint8_t> group_params_to_bytes(const GroupParams& params);
// Full validation (primality etc.); throws std::invalid_argument /
// common::CodecError on bad input.
[[nodiscard]] GroupParams group_params_from_bytes(std::span<const std::uint8_t> bytes,
                                                  mpz::Prng& prng);
// Trusting variant for data from local storage: structural checks only
// (p = 2q+1 and g in range), no primality testing.
[[nodiscard]] GroupParams group_params_from_bytes_trusted(std::span<const std::uint8_t> bytes);

[[nodiscard]] std::string group_params_to_hex(const GroupParams& params);
[[nodiscard]] GroupParams group_params_from_hex(std::string_view hex, mpz::Prng& prng);

}  // namespace dblind::group
