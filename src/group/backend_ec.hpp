// ristretto255 backend: prime-order EC group with 32-byte canonical
// encodings behind the backend::Group interface.
//
// Boxing convention: an element's Bigint value is its RFC 9496 32-byte
// encoding interpreted as a little-endian integer (so element_bytes() emits
// exactly the RFC encoding, and the identity boxes as Bigint 0 — the
// all-zero string). Scalars are ordinary Bigints mod the group order
// ell = 2^252 + 27742317777372353535851937790883648493.
//
// Op accounting: every group operation snapshots the thread-local field-mul
// counter (mpz::fe_mul_count()) around its body and flushes the delta into
// one shared atomic, mirroring MontgomeryCtx::mul_count() — deterministic,
// and attributable per protocol phase via obs::ScopedCounterDelta.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "core/sync.hpp"
#include "group/backend.hpp"
#include "group/ristretto.hpp"

namespace dblind::group::backend {

class Ec final : public Group {
 public:
  Ec();

  [[nodiscard]] Kind kind() const override { return Kind::kEc255; }
  [[nodiscard]] std::string_view name() const override { return "ec255"; }
  [[nodiscard]] const Bigint& p() const override { return p_; }
  [[nodiscard]] const Bigint& q() const override { return q_; }
  [[nodiscard]] const Bigint& g() const override { return g_; }
  [[nodiscard]] std::size_t bits() const override { return 255; }

  [[nodiscard]] Bigint identity() const override { return Bigint(0); }
  [[nodiscard]] bool in_group(const Bigint& x) const override;
  // Every canonical encoding is a group element; same predicate as in_group.
  [[nodiscard]] bool in_zp_star(const Bigint& x) const override { return in_group(x); }

  [[nodiscard]] Bigint pow_g(const Bigint& e) const override;
  [[nodiscard]] Bigint pow(const Bigint& b, const Bigint& e) const override;
  [[nodiscard]] Bigint pow_cached(const Bigint& b, const Bigint& e) const override;
  void pin_base(const Bigint& b) const override;
  [[nodiscard]] Bigint pow_fixed(const Bigint& b, const Bigint& e) const override;
  [[nodiscard]] Bigint mul(const Bigint& a, const Bigint& b) const override;
  [[nodiscard]] Bigint pow2(const Bigint& a, const Bigint& ea, const Bigint& b,
                            const Bigint& eb) const override;
  [[nodiscard]] Bigint multi_pow(std::span<const Bigint> bases,
                                 std::span<const Bigint> exps) const override;
  [[nodiscard]] Bigint inv(const Bigint& a) const override;

  void reset_base_caches() const override;
  [[nodiscard]] std::size_t cached_table_count() const override;
  [[nodiscard]] std::size_t pinned_table_count() const override;

  [[nodiscard]] Bigint hash_to_group(std::string_view label) const override;
  [[nodiscard]] Bigint encode_message(const Bigint& v) const override;
  [[nodiscard]] Bigint decode_message(const Bigint& elem) const override;
  [[nodiscard]] const Bigint& max_message_value() const override { return max_message_; }

  [[nodiscard]] std::vector<std::uint8_t> element_bytes(const Bigint& x) const override;
  [[nodiscard]] std::size_t element_size() const override { return 32; }

  [[nodiscard]] std::uint64_t op_count() const override {
    return op_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::atomic<std::uint64_t>* op_cell() const override {
    return &op_count_;
  }
  // One GF(2^255-19) multiplication on 5 radix-2^51 limbs is 25 word
  // multiplications (we count squarings at the same weight).
  [[nodiscard]] std::uint64_t op_cost_weight() const override { return 25; }

 private:
  // RAII: flush the thread-local fe-mul delta into op_count_ on scope exit.
  struct OpScope {
    explicit OpScope(const Ec& owner)
        : owner_(owner), start_(mpz::fe_mul_count()) {}
    ~OpScope() {
      owner_.op_count_.fetch_add(mpz::fe_mul_count() - start_,
                                 std::memory_order_relaxed);
    }
    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;
    const Ec& owner_;
    std::uint64_t start_;
  };

  // Boxed Bigint -> point; throws std::invalid_argument on anything that is
  // not a canonical encoding.
  [[nodiscard]] ec::Point unbox(const Bigint& x) const;
  [[nodiscard]] static Bigint box(const ec::EncodedPoint& enc);
  [[nodiscard]] ec::ScalarBytes to_scalar(const Bigint& e) const;

  Bigint p_, q_, g_, max_message_;
  mutable std::atomic<std::uint64_t> op_count_{0};

  struct TableCache {
    std::once_flag once;
    std::unique_ptr<const ec::CombTable> g_comb;
    static constexpr std::size_t kMaxEntries = 64;
    static constexpr unsigned kWindowBits = 4;
    static constexpr unsigned kPinnedWindowBits = 5;
    mutable Mutex mu;
    mutable std::map<Bigint, std::shared_ptr<const ec::CombTable>> tables GUARDED_BY(mu);
    mutable std::map<Bigint, std::shared_ptr<const ec::CombTable>> pinned GUARDED_BY(mu);
  };
  mutable TableCache cache_;
};

}  // namespace dblind::group::backend
