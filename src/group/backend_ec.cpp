#include "group/backend_ec.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "hash/sha256.hpp"
#include "mpz/modmath.hpp"

namespace dblind::group::backend {

namespace {

// Message embedding layout inside the 32-byte encoding s (little-endian):
//   s[0]      tweak low bits, shifted left 1 so bit 0 stays clear (decode
//             requires the field element to be "non-negative": even)
//   s[1..29]  payload: the message value, little-endian (<= 2^232 - 1)
//   s[30]     tweak high bits
//   s[31]     0 (keeps s < 2^248 < p: always a canonical field element)
// Encoding tries tweaks until the string decodes to a valid ristretto point
// (success probability ~ 1/4 per try; 2^15 tweaks make failure impossible in
// practice). Deterministic: the first valid tweak wins.
constexpr std::size_t kPayloadBytes = 29;
constexpr unsigned kMaxTweak = 1u << 15;

std::optional<ec::Point> try_unbox(const Bigint& x) {
  if (x.is_negative() || x.bit_length() > 255) return std::nullopt;
  std::vector<std::uint8_t> be = x.to_bytes_be(32);
  ec::EncodedPoint enc;
  std::copy(be.rbegin(), be.rend(), enc.begin());
  return ec::decode(enc);
}

}  // namespace

Ec::Ec()
    : p_(Bigint::from_hex(
          "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed")),
      q_(Bigint::from_hex(
          "1000000000000000000000000000000014def9dea2f79cd65812631a5cf5d3ed")),
      max_message_(Bigint::from_hex(
          "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffff")) {
  g_ = box(ec::encode(ec::base_point()));
}

Bigint Ec::box(const ec::EncodedPoint& enc) {
  std::array<std::uint8_t, 32> be;
  std::copy(enc.rbegin(), enc.rend(), be.begin());
  return Bigint::from_bytes_be(be);
}

ec::Point Ec::unbox(const Bigint& x) const {
  std::optional<ec::Point> pt = try_unbox(x);
  if (!pt) throw std::invalid_argument("ec255: not a canonical group element encoding");
  return *pt;
}

ec::ScalarBytes Ec::to_scalar(const Bigint& e) const {
  std::vector<std::uint8_t> be = mpz::mod(e, q_).to_bytes_be(32);
  ec::ScalarBytes s;
  std::copy(be.rbegin(), be.rend(), s.begin());
  return s;
}

bool Ec::in_group(const Bigint& x) const {
  OpScope scope(*this);
  return try_unbox(x).has_value();
}

Bigint Ec::pow_g(const Bigint& e) const {
  OpScope scope(*this);
  std::call_once(cache_.once, [&] {
    cache_.g_comb = std::make_unique<const ec::CombTable>(ec::base_point(),
                                                          TableCache::kWindowBits);
  });
  return box(ec::encode(cache_.g_comb->mul(to_scalar(e))));
}

Bigint Ec::pow(const Bigint& b, const Bigint& e) const {
  OpScope scope(*this);
  return box(ec::encode(ec::scalar_mul(unbox(b), to_scalar(e))));
}

Bigint Ec::pow_cached(const Bigint& b, const Bigint& e) const {
  OpScope scope(*this);
  ec::Point base = unbox(b);
  std::shared_ptr<const ec::CombTable> table;
  {
    MutexLock lock(cache_.mu);
    auto it = cache_.tables.find(b);
    if (it != cache_.tables.end()) {
      table = it->second;
    } else if (cache_.tables.size() < TableCache::kMaxEntries) {
      table = std::make_shared<const ec::CombTable>(base, TableCache::kWindowBits);
      cache_.tables.emplace(b, table);
    }
  }
  if (!table) return box(ec::encode(ec::scalar_mul(base, to_scalar(e))));  // cache full
  return box(ec::encode(table->mul(to_scalar(e))));
}

void Ec::pin_base(const Bigint& b) const {
  if (b == g_) return;  // pow_g's comb table already covers g
  OpScope scope(*this);
  ec::Point base = unbox(b);
  MutexLock lock(cache_.mu);
  if (cache_.pinned.contains(b)) return;
  cache_.pinned.emplace(
      b, std::make_shared<const ec::CombTable>(base, TableCache::kPinnedWindowBits));
}

Bigint Ec::pow_fixed(const Bigint& b, const Bigint& e) const {
  if (b == g_) return pow_g(e);
  OpScope scope(*this);
  std::shared_ptr<const ec::CombTable> table;
  {
    MutexLock lock(cache_.mu);
    auto it = cache_.pinned.find(b);
    if (it != cache_.pinned.end()) table = it->second;
  }
  if (!table)  // not pinned: no insertion
    return box(ec::encode(ec::scalar_mul(unbox(b), to_scalar(e))));
  return box(ec::encode(table->mul(to_scalar(e))));
}

Bigint Ec::mul(const Bigint& a, const Bigint& b) const {
  OpScope scope(*this);
  return box(ec::encode(ec::add(unbox(a), unbox(b))));
}

Bigint Ec::pow2(const Bigint& a, const Bigint& ea, const Bigint& b,
                const Bigint& eb) const {
  OpScope scope(*this);
  const std::array<ec::Point, 2> bases = {unbox(a), unbox(b)};
  const std::array<ec::ScalarBytes, 2> scalars = {to_scalar(ea), to_scalar(eb)};
  return box(ec::encode(ec::multi_scalar_mul(bases, scalars)));
}

Bigint Ec::multi_pow(std::span<const Bigint> bases, std::span<const Bigint> exps) const {
  OpScope scope(*this);
  std::vector<ec::Point> pts;
  std::vector<ec::ScalarBytes> scalars;
  pts.reserve(bases.size());
  scalars.reserve(exps.size());
  for (const Bigint& b : bases) pts.push_back(unbox(b));
  for (const Bigint& e : exps) scalars.push_back(to_scalar(e));
  return box(ec::encode(ec::multi_scalar_mul(pts, scalars)));
}

Bigint Ec::inv(const Bigint& a) const {
  OpScope scope(*this);
  return box(ec::encode(ec::neg(unbox(a))));
}

void Ec::reset_base_caches() const {
  MutexLock lock(cache_.mu);
  cache_.tables.clear();
  cache_.pinned.clear();  // g's call_once comb is separate and stays
}

std::size_t Ec::cached_table_count() const {
  MutexLock lock(cache_.mu);
  return cache_.tables.size();
}

std::size_t Ec::pinned_table_count() const {
  MutexLock lock(cache_.mu);
  return cache_.pinned.size();
}

Bigint Ec::hash_to_group(std::string_view label) const {
  OpScope scope(*this);
  // 64 uniform bytes through the RFC 9496 one-way map: nobody learns a
  // discrete log of the result w.r.t. g (or anything else).
  for (std::uint32_t attempt = 0;; ++attempt) {
    std::array<std::uint8_t, 64> uniform;
    for (std::uint32_t half = 0; half < 2; ++half) {
      hash::Sha256 h;
      h.update("dblind/hash-to-group/ec255/v1");
      h.update(label);
      const std::uint32_t counter = attempt * 2 + half;
      std::uint8_t ctr_bytes[4] = {static_cast<std::uint8_t>(counter),
                                   static_cast<std::uint8_t>(counter >> 8),
                                   static_cast<std::uint8_t>(counter >> 16),
                                   static_cast<std::uint8_t>(counter >> 24)};
      h.update(std::span<const std::uint8_t>(ctr_bytes, 4));
      hash::Digest d = h.finish();
      std::copy(d.begin(), d.end(), uniform.begin() + 32 * half);
    }
    ec::Point pt = ec::map_to_point(uniform);
    if (!ec::is_identity(pt)) return box(ec::encode(pt));
    // Identity output (probability ~2^-250); re-derive with fresh counters.
  }
}

Bigint Ec::encode_message(const Bigint& v) const {
  if (v.is_negative() || v.is_zero() || v > max_message_)
    throw std::invalid_argument("encode_message: value must be in [1, 2^232)");
  OpScope scope(*this);
  std::vector<std::uint8_t> payload_be = v.to_bytes_be(kPayloadBytes);
  ec::EncodedPoint s{};
  std::copy(payload_be.rbegin(), payload_be.rend(), s.begin() + 1);
  for (unsigned tweak = 0; tweak < kMaxTweak; ++tweak) {
    s[0] = static_cast<std::uint8_t>((tweak & 0x7f) << 1);
    s[30] = static_cast<std::uint8_t>(tweak >> 7);
    if (ec::decode(s)) return box(s);
  }
  throw std::runtime_error("encode_message: no decodable tweak (impossible)");
}

Bigint Ec::decode_message(const Bigint& elem) const {
  OpScope scope(*this);
  if (!try_unbox(elem))
    throw std::invalid_argument("decode_message: not a group element");
  std::vector<std::uint8_t> be = elem.to_bytes_be(32);
  ec::EncodedPoint s;
  std::copy(be.rbegin(), be.rend(), s.begin());
  std::array<std::uint8_t, kPayloadBytes> payload_be;
  std::copy(std::make_reverse_iterator(s.begin() + 1 + kPayloadBytes),
            std::make_reverse_iterator(s.begin() + 1), payload_be.begin());
  Bigint v = Bigint::from_bytes_be(payload_be);
  if (v.is_zero())
    throw std::invalid_argument("decode_message: element does not embed a message");
  return v;
}

std::vector<std::uint8_t> Ec::element_bytes(const Bigint& x) const {
  // The RFC 9496 wire encoding: 32 little-endian bytes.
  std::vector<std::uint8_t> be = x.to_bytes_be(32);
  std::reverse(be.begin(), be.end());
  return be;
}

}  // namespace dblind::group::backend
