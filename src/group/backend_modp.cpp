#include "group/backend_modp.hpp"

#include <algorithm>
#include <stdexcept>

#include "hash/sha256.hpp"
#include "mpz/modmath.hpp"

namespace dblind::group::backend {

ModP::ModP(Bigint p, Bigint q, Bigint g)
    : p_(std::move(p)), q_(std::move(q)), g_(std::move(g)), mont_(p_) {}

bool ModP::in_group(const Bigint& x) const {
  if (!in_zp_star(x)) return false;
  return mpz::jacobi(x, p_) == 1;  // QR subgroup == order-q subgroup for safe primes
}

bool ModP::in_zp_star(const Bigint& x) const {
  return !x.is_negative() && !x.is_zero() && x < p_;
}

Bigint ModP::pow_g(const Bigint& e) const {
  std::call_once(cache_.once, [&] {
    cache_.g_pow = std::make_unique<const mpz::FixedBasePow>(mont_, g_, q_.bit_length());
  });
  return cache_.g_pow->pow(mpz::mod(e, q_));
}

Bigint ModP::pow(const Bigint& b, const Bigint& e) const {
  return mont_.pow(mpz::mod(b, p_), mpz::mod(e, q_));
}

Bigint ModP::pow_cached(const Bigint& b, const Bigint& e) const {
  Bigint base = mpz::mod(b, p_);
  std::shared_ptr<const mpz::FixedBasePow> table;
  {
    MutexLock lock(cache_.mu);
    auto it = cache_.tables.find(base);
    if (it != cache_.tables.end()) {
      table = it->second;
    } else if (cache_.tables.size() < FixedBaseCache::kMaxEntries) {
      table = std::make_shared<const mpz::FixedBasePow>(mont_, base, q_.bit_length());
      cache_.tables.emplace(base, table);
    }
  }
  if (!table) return mont_.pow(base, mpz::mod(e, q_));  // cache full
  return table->pow(mpz::mod(e, q_));
}

void ModP::pin_base(const Bigint& b) const {
  Bigint base = mpz::mod(b, p_);
  if (base == g_) return;  // pow_g's comb table already covers g
  MutexLock lock(cache_.mu);
  if (cache_.pinned.contains(base)) return;
  cache_.pinned.emplace(
      base, std::make_shared<const mpz::FixedBasePow>(mont_, base, q_.bit_length(),
                                                      FixedBaseCache::kPinnedWindowBits));
}

Bigint ModP::pow_fixed(const Bigint& b, const Bigint& e) const {
  Bigint base = mpz::mod(b, p_);
  if (base == g_) return pow_g(e);
  std::shared_ptr<const mpz::FixedBasePow> table;
  {
    MutexLock lock(cache_.mu);
    auto it = cache_.pinned.find(base);
    if (it != cache_.pinned.end()) table = it->second;
  }
  if (!table) return mont_.pow(base, mpz::mod(e, q_));  // not pinned: no insertion
  return table->pow(mpz::mod(e, q_));
}

void ModP::reset_base_caches() const {
  MutexLock lock(cache_.mu);
  cache_.tables.clear();
  cache_.pinned.clear();  // g's call_once comb is separate and stays
}

std::size_t ModP::cached_table_count() const {
  MutexLock lock(cache_.mu);
  return cache_.tables.size();
}

std::size_t ModP::pinned_table_count() const {
  MutexLock lock(cache_.mu);
  return cache_.pinned.size();
}

Bigint ModP::pow2(const Bigint& a, const Bigint& ea, const Bigint& b,
                  const Bigint& eb) const {
  return mont_.pow2(mpz::mod(a, p_), mpz::mod(ea, q_), mpz::mod(b, p_), mpz::mod(eb, q_));
}

Bigint ModP::multi_pow(std::span<const Bigint> bases, std::span<const Bigint> exps) const {
  std::vector<Bigint> reduced(bases.begin(), bases.end());
  for (Bigint& b : reduced) {
    if (b.is_negative() || b >= p_) b = mpz::mod(b, p_);
  }
  return mont_.multi_pow(reduced, exps);
}

Bigint ModP::mul(const Bigint& a, const Bigint& b) const {
  return mont_.mul(mpz::mod(a, p_), mpz::mod(b, p_));
}

Bigint ModP::inv(const Bigint& a) const { return mpz::invmod(a, p_); }

Bigint ModP::hash_to_group(std::string_view label) const {
  // Expand the label to >= |p| + 64 bits of digest material so the reduction
  // mod p is statistically uniform, then square to land in the QR subgroup.
  const std::size_t need = element_size() + 8;
  std::vector<std::uint8_t> material;
  std::uint32_t counter = 0;
  for (;;) {
    material.clear();
    while (material.size() < need) {
      hash::Sha256 h;
      h.update("dblind/hash-to-group/v1");
      h.update(label);
      std::uint8_t ctr_bytes[4] = {static_cast<std::uint8_t>(counter),
                                   static_cast<std::uint8_t>(counter >> 8),
                                   static_cast<std::uint8_t>(counter >> 16),
                                   static_cast<std::uint8_t>(counter >> 24)};
      h.update(std::span<const std::uint8_t>(ctr_bytes, 4));
      hash::Digest d = h.finish();
      material.insert(material.end(), d.begin(), d.end());
      ++counter;
    }
    Bigint v = mpz::mod(Bigint::from_bytes_be(material), p_);
    Bigint e = mont_.mul(v, v);  // v^2: a quadratic residue
    if (in_group(e) && e != Bigint(1)) return e;
    // v was 0, 1 or p-1 (astronomically unlikely); extend and retry.
  }
}

Bigint ModP::encode_message(const Bigint& v) const {
  if (v.is_negative() || v.is_zero() || v > q_)
    throw std::invalid_argument("encode_message: value must be in [1, q]");
  if (mpz::jacobi(v, p_) == 1) return v;
  return p_ - v;
}

Bigint ModP::decode_message(const Bigint& elem) const {
  if (!in_group(elem)) throw std::invalid_argument("decode_message: not a group element");
  if (elem <= q_) return elem;
  return p_ - elem;
}

std::vector<std::uint8_t> ModP::element_bytes(const Bigint& x) const {
  return x.to_bytes_be(element_size());
}

}  // namespace dblind::group::backend
