#include "group/ristretto.hpp"

#include "mpz/fe25519.hpp"

namespace dblind::group::ec {

namespace {

using mpz::fe_abs;
using mpz::fe_add;
using mpz::fe_cmov;
using mpz::fe_eq;
using mpz::fe_from_bytes;
using mpz::fe_invert;
using mpz::fe_is_negative;
using mpz::fe_is_zero;
using mpz::fe_mul;
using mpz::fe_neg;
using mpz::fe_sq;
using mpz::fe_sqrt_ratio_m1;
using mpz::fe_sub;
using mpz::fe_to_bytes;

// Curve and Ristretto constants (limbs generated from the exact values in
// RFC 7748 / RFC 9496 and cross-checked by tests/group/ristretto_test.cpp
// against the published generator-multiple vectors).
constexpr Fe25519 kD{{0x34dca135978a3, 0x1a8283b156ebd, 0x5e7a26001c029,
                      0x739c663a03cbb, 0x52036cee2b6ff}};
constexpr Fe25519 k2D{{0x69b9426b2f159, 0x35050762add7a, 0x3cf44c0038052,
                       0x6738cc7407977, 0x2406d9dc56dff}};
constexpr Fe25519 kSqrtM1{{0x61b274a0ea0b0, 0xd5a5fc8f189d, 0x7ef5e9cbd0c60,
                           0x78595a6804c9e, 0x2b8324804fc1d}};
constexpr Fe25519 kInvSqrtAMinusD{{0xfdaa805d40ea, 0x2eb482e57d339, 0x7610274bc58,
                                   0x6510b613dc8ff, 0x786c8905cfaff}};
constexpr Fe25519 kSqrtAdMinusOne{{0x95fb684d1d2, 0x67c90f568502d, 0x28b8094189c7,
                                   0x3a9f861819b67, 0x4896ce40d47cb}};
constexpr Fe25519 kOneMinusDSq{{0x409c1945fc176, 0x719abc6a1fc4f, 0x1c37f90b20684,
                                0x6bccca55eedf, 0x29072a8b2b3e}};
constexpr Fe25519 kDMinusOneSq{{0x55aaa44ed4d20, 0x59603c3332635, 0x26d3baf4a7928,
                                0x120a66e6997a9, 0x5968b37af66c2}};
// Generator: the Ed25519 base point (x even, y = 4/5).
constexpr Fe25519 kBaseX{{0x62d608f25d51a, 0x412a4b4f6592a, 0x75b7171a4b31d,
                          0x1ff60527118fe, 0x216936d3cd6e5}};
constexpr Fe25519 kBaseY{{0x6666666666658, 0x4cccccccccccc, 0x1999999999999,
                          0x3333333333333, 0x6666666666666}};
constexpr Fe25519 kBaseT{{0x68ab3a5b7dda3, 0xeea2a5eadbb, 0x2af8df483c27e,
                          0x332b375274732, 0x67875f0fd78b7}};

// Nibble/bit-window digit of a little-endian scalar: bits [w*i, w*i + w).
unsigned digit_of(const ScalarBytes& s, unsigned w, unsigned i) {
  const unsigned bit = w * i;
  const unsigned byte = bit / 8;
  if (byte >= 32) return 0;
  unsigned v = s[byte] >> (bit % 8);
  if (bit % 8 + w > 8 && byte + 1 < 32) v |= unsigned{s[byte + 1]} << (8 - bit % 8);
  return v & ((1U << w) - 1U);
}

}  // namespace

const ScalarBytes& group_order_le() {
  static const ScalarBytes ell = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58,
                                  0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
                                  0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                                  0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};
  return ell;
}

Point identity() {
  return Point{Fe25519::zero(), Fe25519::one(), Fe25519::one(), Fe25519::zero()};
}

const Point& base_point() {
  static const Point base{kBaseX, kBaseY, Fe25519::one(), kBaseT};
  return base;
}

// Unified extended-coordinate addition (add-2008-hwcd-3, a = -1). Complete
// for ed25519 (a square, d non-square), so identity and doubling inputs need
// no special cases.
Point add(const Point& a, const Point& b) {
  Fe25519 A = fe_mul(fe_sub(a.Y, a.X), fe_sub(b.Y, b.X));
  Fe25519 B = fe_mul(fe_add(a.Y, a.X), fe_add(b.Y, b.X));
  Fe25519 C = fe_mul(fe_mul(a.T, k2D), b.T);
  Fe25519 D = fe_mul(fe_add(a.Z, a.Z), b.Z);
  Fe25519 E = fe_sub(B, A);
  Fe25519 F = fe_sub(D, C);
  Fe25519 G = fe_add(D, C);
  Fe25519 H = fe_add(B, A);
  return Point{fe_mul(E, F), fe_mul(G, H), fe_mul(F, G), fe_mul(E, H)};
}

// dbl-2008-hwcd (a = -1): 4M + 4S, cheaper than add(a, a).
Point dbl(const Point& a) {
  Fe25519 A = fe_sq(a.X);
  Fe25519 B = fe_sq(a.Y);
  Fe25519 C = fe_add(fe_sq(a.Z), fe_sq(a.Z));
  Fe25519 D = fe_neg(A);
  Fe25519 E = fe_sub(fe_sub(fe_sq(fe_add(a.X, a.Y)), A), B);
  Fe25519 G = fe_add(D, B);
  Fe25519 F = fe_sub(G, C);
  Fe25519 H = fe_sub(D, B);
  return Point{fe_mul(E, F), fe_mul(G, H), fe_mul(F, G), fe_mul(E, H)};
}

Point neg(const Point& a) { return Point{fe_neg(a.X), a.Y, a.Z, fe_neg(a.T)}; }

bool eq(const Point& a, const Point& b) {
  // RFC 9496 §4.3.3: equal iff X1*Y2 == Y1*X2 or Y1*Y2 == X1*X2 (the second
  // disjunct catches the torsion-rotated representatives).
  return fe_eq(fe_mul(a.X, b.Y), fe_mul(a.Y, b.X)) ||
         fe_eq(fe_mul(a.Y, b.Y), fe_mul(a.X, b.X));
}

bool is_identity(const Point& a) { return eq(a, identity()); }

EncodedPoint encode(const Point& a) {
  // RFC 9496 §4.3.2.
  Fe25519 u1 = fe_mul(fe_add(a.Z, a.Y), fe_sub(a.Z, a.Y));
  Fe25519 u2 = fe_mul(a.X, a.Y);
  Fe25519 inv_sqrt =
      fe_sqrt_ratio_m1(Fe25519::one(), fe_mul(u1, fe_sq(u2))).root;
  Fe25519 den1 = fe_mul(inv_sqrt, u1);
  Fe25519 den2 = fe_mul(inv_sqrt, u2);
  Fe25519 z_inv = fe_mul(fe_mul(den1, den2), a.T);

  Fe25519 ix0 = fe_mul(a.X, kSqrtM1);
  Fe25519 iy0 = fe_mul(a.Y, kSqrtM1);
  Fe25519 enchanted = fe_mul(den1, kInvSqrtAMinusD);
  const bool rotate = fe_is_negative(fe_mul(a.T, z_inv));

  Fe25519 x = a.X, y = a.Y, den_inv = den2;
  fe_cmov(x, iy0, rotate);
  fe_cmov(y, ix0, rotate);
  fe_cmov(den_inv, enchanted, rotate);

  Fe25519 y_neg = fe_neg(y);
  fe_cmov(y, y_neg, fe_is_negative(fe_mul(x, z_inv)));

  Fe25519 s = fe_abs(fe_mul(den_inv, fe_sub(a.Z, y)));
  EncodedPoint out;
  fe_to_bytes(std::span<std::uint8_t, 32>(out), s);
  return out;
}

std::optional<Point> decode(std::span<const std::uint8_t, 32> in) {
  // RFC 9496 §4.3.1. Canonicality first: the bytes must round-trip (rejects
  // values >= p and a set high bit) and s must be non-negative.
  Fe25519 s = fe_from_bytes(in);
  EncodedPoint canon;
  fe_to_bytes(std::span<std::uint8_t, 32>(canon), s);
  for (std::size_t i = 0; i < 32; ++i)
    if (canon[i] != in[i]) return std::nullopt;
  if (fe_is_negative(s)) return std::nullopt;

  Fe25519 ss = fe_sq(s);
  Fe25519 u1 = fe_sub(Fe25519::one(), ss);
  Fe25519 u2 = fe_add(Fe25519::one(), ss);
  Fe25519 u2_sqr = fe_sq(u2);
  Fe25519 v = fe_sub(fe_neg(fe_mul(kD, fe_sq(u1))), u2_sqr);
  auto [was_square, inv_sqrt] =
      fe_sqrt_ratio_m1(Fe25519::one(), fe_mul(v, u2_sqr));
  if (!was_square) return std::nullopt;

  Fe25519 den_x = fe_mul(inv_sqrt, u2);
  Fe25519 den_y = fe_mul(fe_mul(inv_sqrt, den_x), v);
  Fe25519 x = fe_abs(fe_mul(fe_add(s, s), den_x));
  Fe25519 y = fe_mul(u1, den_y);
  Fe25519 t = fe_mul(x, y);
  if (fe_is_negative(t) || fe_is_zero(y)) return std::nullopt;
  return Point{x, y, Fe25519::one(), t};
}

Point scalar_mul(const Point& base, const ScalarBytes& scalar) {
  // 4-bit fixed window, top-down.
  std::array<Point, 16> table;
  table[0] = identity();
  table[1] = base;
  for (std::size_t j = 2; j < 16; ++j) table[j] = add(table[j - 1], base);
  Point acc = identity();
  for (int i = 63; i >= 0; --i) {
    if (i != 63)
      acc = dbl(dbl(dbl(dbl(acc))));
    const unsigned d = digit_of(scalar, 4, static_cast<unsigned>(i));
    if (d != 0) acc = add(acc, table[d]);
  }
  return acc;
}

namespace {

// RFC 9496 §4.3.4 MAP: field element -> point (one half of the one-way map).
Point elligator_map(const Fe25519& t) {
  Fe25519 r = fe_mul(kSqrtM1, fe_sq(t));
  Fe25519 u = fe_mul(fe_add(r, Fe25519::one()), kOneMinusDSq);
  Fe25519 minus_one = fe_neg(Fe25519::one());
  Fe25519 v = fe_mul(fe_sub(minus_one, fe_mul(r, kD)), fe_add(r, kD));
  auto [was_square, s] = fe_sqrt_ratio_m1(u, v);
  Fe25519 s_prime = fe_neg(fe_abs(fe_mul(s, t)));
  fe_cmov(s_prime, s, was_square);
  s = s_prime;
  Fe25519 c = r;
  fe_cmov(c, minus_one, was_square);
  Fe25519 n = fe_sub(fe_mul(fe_mul(c, fe_sub(r, Fe25519::one())), kDMinusOneSq), v);
  Fe25519 w0 = fe_mul(fe_add(s, s), v);
  Fe25519 w1 = fe_mul(n, kSqrtAdMinusOne);
  Fe25519 w2 = fe_sub(Fe25519::one(), fe_sq(s));
  Fe25519 w3 = fe_add(Fe25519::one(), fe_sq(s));
  return Point{fe_mul(w0, w3), fe_mul(w2, w1), fe_mul(w1, w3), fe_mul(w0, w2)};
}

}  // namespace

Point map_to_point(std::span<const std::uint8_t, 64> uniform) {
  // fe_from_bytes masks the top bit of each half, per the RFC.
  Fe25519 t1 = fe_from_bytes(uniform.subspan<0, 32>());
  Fe25519 t2 = fe_from_bytes(uniform.subspan<32, 32>());
  return add(elligator_map(t1), elligator_map(t2));
}

CombTable::CombTable(const Point& base, unsigned window_bits) : window_(window_bits) {
  const unsigned positions = (255 + window_ - 1) / window_ + 1;
  const std::size_t row_len = std::size_t{1} << window_;
  table_.resize(positions);
  Point pos_base = base;
  for (unsigned i = 0; i < positions; ++i) {
    auto& row = table_[i];
    row.resize(row_len);
    row[0] = identity();
    for (std::size_t j = 1; j < row_len; ++j) row[j] = add(row[j - 1], pos_base);
    for (unsigned b = 0; b < window_; ++b) pos_base = dbl(pos_base);
  }
}

Point CombTable::mul(const ScalarBytes& scalar) const {
  Point acc = identity();
  for (unsigned i = 0; i < table_.size(); ++i) {
    const unsigned d = digit_of(scalar, window_, i);
    if (d != 0) acc = add(acc, table_[i][d]);
  }
  return acc;
}

namespace {

Point straus_mul(std::span<const Point> bases, std::span<const ScalarBytes> scalars) {
  // Interleaved 4-bit windows (Shamir's trick generalized).
  const std::size_t n = bases.size();
  std::vector<std::array<Point, 16>> tables(n);
  for (std::size_t k = 0; k < n; ++k) {
    tables[k][0] = identity();
    tables[k][1] = bases[k];
    for (std::size_t j = 2; j < 16; ++j) tables[k][j] = add(tables[k][j - 1], bases[k]);
  }
  Point acc = identity();
  for (int i = 63; i >= 0; --i) {
    if (i != 63) acc = dbl(dbl(dbl(dbl(acc))));
    for (std::size_t k = 0; k < n; ++k) {
      const unsigned d = digit_of(scalars[k], 4, static_cast<unsigned>(i));
      if (d != 0) acc = add(acc, tables[k][d]);
    }
  }
  return acc;
}

Point pippenger_mul(std::span<const Point> bases, std::span<const ScalarBytes> scalars) {
  constexpr unsigned c = 6;  // bucket window
  constexpr unsigned kWindows = (256 + c - 1) / c;
  const std::size_t n_buckets = (std::size_t{1} << c) - 1;
  Point acc = identity();
  std::vector<Point> buckets(n_buckets);
  for (int w = static_cast<int>(kWindows) - 1; w >= 0; --w) {
    if (w != static_cast<int>(kWindows) - 1)
      for (unsigned b = 0; b < c; ++b) acc = dbl(acc);
    for (auto& b : buckets) b = identity();
    for (std::size_t k = 0; k < bases.size(); ++k) {
      const unsigned d = digit_of(scalars[k], c, static_cast<unsigned>(w));
      if (d != 0) buckets[d - 1] = add(buckets[d - 1], bases[k]);
    }
    Point running = identity();
    Point sum = identity();
    for (std::size_t j = n_buckets; j-- > 0;) {
      running = add(running, buckets[j]);
      sum = add(sum, running);
    }
    acc = add(acc, sum);
  }
  return acc;
}

}  // namespace

Point multi_scalar_mul(std::span<const Point> bases, std::span<const ScalarBytes> scalars) {
  if (bases.empty()) return identity();
  if (bases.size() <= kStrausMaxBases) return straus_mul(bases, scalars);
  return pippenger_mul(bases, scalars);
}

}  // namespace dblind::group::ec
