// ThreadedBus: a real multithreaded transport for the same net::Node
// interface the simulator drives.
//
// Each node runs its own event-loop thread with a mutex-protected inbox;
// sends are cross-thread queue pushes; timers use condition-variable
// deadlines. Nothing is deterministic here — this transport exists to show
// that the protocol code is genuinely asynchronous (it runs unmodified under
// real-time interleavings) and to catch accidental dependencies on the
// simulator's total event order. Each node's handlers execute on exactly one
// thread, so Node implementations need no internal locking.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/sync.hpp"
#include "net/fault.hpp"
#include "net/sim.hpp"

namespace dblind::net {

class ThreadedBus {
 public:
  explicit ThreadedBus(std::uint64_t seed);
  ~ThreadedBus();

  ThreadedBus(const ThreadedBus&) = delete;
  ThreadedBus& operator=(const ThreadedBus&) = delete;

  // Add nodes before start().
  NodeId add_node(std::unique_ptr<Node> node) EXCLUDES(lifecycle_mu_);

  // Starts every node's thread (delivering on_start first). A bus runs at
  // most once: start() after stop() throws std::logic_error (slots keep
  // their stopping flag, and re-delivering on_start would violate the
  // once-only contract nodes rely on).
  void start() EXCLUDES(lifecycle_mu_);
  // Polls `pred` (from the calling thread) until it returns true or
  // `timeout` (real time) expires. Returns the final predicate value.
  // The predicate must be thread-safe with respect to node state it reads —
  // use data the node publishes through atomic/worker-confined reads only
  // after stop(), or rely on idempotent re-checks.
  bool run_until(const std::function<bool()>& pred, std::chrono::milliseconds timeout);
  // Stops all node threads and joins them. After stop() node state can be
  // inspected safely from the caller. Idempotent and safe to race with
  // itself (lifecycle_mu_ serializes concurrent stop() calls; the losers
  // see running_ == false and return without double-joining).
  void stop() EXCLUDES(lifecycle_mu_);

  // Fault injection (set before start()): applies `plan` to every message on
  // post_message — the same chaos layer the simulator runs, on real threads.
  // Partition times are microseconds since the bus epoch (construction).
  void set_fault_plan(FaultPlan plan) EXCLUDES(lifecycle_mu_, fault_mu_);
  // Observability (set before start()): network-level events reported with
  // wall-clock timestamps (microseconds since the bus epoch). Non-owning;
  // the recorder must be thread-safe (all obs recorders are) and outlive
  // the bus. nullptr records nothing.
  void set_trace(obs::TraceRecorder* recorder) { trace_ = recorder; }
  // Transport accounting (thread-safe; end_time stays 0 on this transport).
  [[nodiscard]] NetStats stats() const EXCLUDES(fault_mu_);

  [[nodiscard]] std::size_t node_count() const { return slots_.size(); }
  [[nodiscard]] Node& node(NodeId id) { return *slots_.at(id)->node; }

 private:
  struct Slot;
  class BusContext;

  void deliver_loop(Slot& slot);
  void post_message(NodeId to, NodeId from, std::vector<std::uint8_t> bytes,
                    std::uint64_t parent_span) EXCLUDES(fault_mu_);
  // Fresh run-unique nonzero span id; 0 when tracing is off (trace_ is set
  // before start() and const afterwards, so this read is race-free).
  [[nodiscard]] std::uint64_t mint_span() {
    return trace_ == nullptr ? 0
                             : next_span_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  struct TimerEntry {
    std::chrono::steady_clock::time_point due;
    std::uint64_t token;
    // Current span captured at arm time; restored as the firing handler's
    // ambient span (timers never mint — see net::Context).
    std::uint64_t span = 0;
  };

  struct Slot {
    NodeId id = 0;
    std::unique_ptr<Node> node;  // handlers run on this slot's thread only
    std::unique_ptr<mpz::Prng> rng;
    std::thread thread;

    // Ambient causal span of the handler currently executing on this slot's
    // thread. Written and read only from that thread (deliver_loop and the
    // BusContext it passes to handlers), so it needs no lock.
    std::uint64_t current_span = 0;

    Mutex mu;
    CondVar cv;
    struct Incoming {
      NodeId from;
      std::vector<std::uint8_t> bytes;
      std::uint64_t span = 0;  // the kMsgRecv span, minted at post time
    };
    std::vector<Incoming> inbox GUARDED_BY(mu);
    std::vector<TimerEntry> timers GUARDED_BY(mu);
    bool stopping GUARDED_BY(mu) = false;
    bool started GUARDED_BY(mu) = false;
  };

  // slots_ itself (the vector) is append-only before start() and const while
  // threads run; per-slot mutable state is guarded by each Slot::mu.
  std::vector<std::unique_ptr<Slot>> slots_;
  std::chrono::steady_clock::time_point epoch_;
  mpz::Prng seed_rng_;

  // Lifecycle flags: written by start()/stop(), which user code may call
  // from any thread (including racing a second stop() against the
  // destructor's implicit one). Never taken by node threads, so joining
  // while holding it cannot deadlock. Ordering: lifecycle_mu_ may be held
  // while taking a Slot::mu (stop() marking slots), never the reverse.
  mutable Mutex lifecycle_mu_;
  bool running_ GUARDED_BY(lifecycle_mu_) = false;
  bool stopped_ GUARDED_BY(lifecycle_mu_) = false;  // stop() is terminal

  // Chaos layer: fault decisions and stats share one mutex (taken on every
  // post_message; never while holding a slot mutex).
  mutable Mutex fault_mu_;
  FaultInjector faults_ GUARDED_BY(fault_mu_);
  mpz::Prng fault_rng_ GUARDED_BY(fault_mu_);
  NetStats stats_ GUARDED_BY(fault_mu_);
  obs::TraceRecorder* trace_ = nullptr;  // set before start(); recorders are thread-safe
  // Span ids are minted bus-wide so they are run-unique across slots.
  std::atomic<std::uint64_t> next_span_{0};
};

}  // namespace dblind::net
