#include "net/fault.hpp"

namespace dblind::net {

bool FaultInjector::partitioned(NodeId from, NodeId to, Time now) const {
  for (const FaultPlan::Partition& p : plan_.partitions) {
    if (now < p.start || now >= p.heal) continue;
    if (p.island.contains(from) != p.island.contains(to)) return true;
  }
  return false;
}

FaultInjector::Fate FaultInjector::apply(NodeId from, NodeId to, Time now,
                                         std::vector<std::uint8_t>& bytes, mpz::Prng& prng) {
  if (partitioned(from, to, now)) return Fate::kDrop;
  for (NodeId end : {from, to}) {
    auto dep = plan_.departures.find(end);
    if (dep != plan_.departures.end() && now >= dep->second) return Fate::kDrop;
  }
  unsigned drop = plan_.drop_percent;
  auto it = plan_.link_drop_percent.find({from, to});
  if (it != plan_.link_drop_percent.end()) drop = it->second;
  if (drop != 0 && prng.uniform_u64(100) < drop) return Fate::kDrop;
  if (plan_.corrupt_percent != 0 && !bytes.empty() &&
      prng.uniform_u64(100) < plan_.corrupt_percent) {
    std::uint64_t bit = prng.uniform_u64(static_cast<std::uint64_t>(bytes.size()) * 8);
    bytes[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
    return Fate::kCorrupt;
  }
  return Fate::kDeliver;
}

}  // namespace dblind::net
