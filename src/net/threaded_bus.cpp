#include "net/threaded_bus.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dblind::net {

// Per-node Context handed to handlers; lives for the thread's lifetime.
class ThreadedBus::BusContext final : public Context {
 public:
  BusContext(ThreadedBus& bus, Slot& slot) : bus_(bus), slot_(slot) {}

  void send(NodeId to, std::vector<std::uint8_t> bytes) override {
    bus_.post_message(to, slot_.id, std::move(bytes), slot_.current_span);
  }

  void set_timer(Time delay, std::uint64_t token) override {
    // Called from this slot's own thread (inside a handler), where mu is not
    // held — safe to lock.
    MutexLock lock(slot_.mu);
    slot_.timers.push_back(
        {std::chrono::steady_clock::now() + std::chrono::microseconds(delay), token,
         slot_.current_span});
    slot_.cv.notify_all();
  }

  [[nodiscard]] Time now() const override {
    return static_cast<Time>(std::chrono::duration_cast<std::chrono::microseconds>(
                                 std::chrono::steady_clock::now() - bus_.epoch_)
                                 .count());
  }

  [[nodiscard]] NodeId self() const override { return slot_.id; }

  [[nodiscard]] mpz::Prng& rng() override { return *slot_.rng; }

  [[nodiscard]] std::uint64_t current_span() const override { return slot_.current_span; }

  void set_current_span(std::uint64_t span) override { slot_.current_span = span; }

  [[nodiscard]] std::uint64_t mint_span() override { return bus_.mint_span(); }

 private:
  ThreadedBus& bus_;
  Slot& slot_;
};

ThreadedBus::ThreadedBus(std::uint64_t seed)
    : epoch_(std::chrono::steady_clock::now()), seed_rng_(seed),
      fault_rng_(seed ^ 0xFA17C0DEull) {}

ThreadedBus::~ThreadedBus() { stop(); }

NodeId ThreadedBus::add_node(std::unique_ptr<Node> node) {
  {
    MutexLock lock(lifecycle_mu_);
    if (running_) throw std::logic_error("ThreadedBus: add_node after start");
  }
  if (!node) throw std::invalid_argument("ThreadedBus: null node");
  auto slot = std::make_unique<Slot>();
  slot->id = static_cast<NodeId>(slots_.size());
  slot->node = std::move(node);
  slot->rng =
      std::make_unique<mpz::Prng>(seed_rng_.fork("bus-node/" + std::to_string(slot->id)));
  slots_.push_back(std::move(slot));
  return slots_.back()->id;
}

void ThreadedBus::start() {
  MutexLock lock(lifecycle_mu_);
  if (running_) return;
  if (stopped_) throw std::logic_error("ThreadedBus: start after stop");
  running_ = true;
  for (auto& slot : slots_) {
    slot->thread = std::thread([this, s = slot.get()] { deliver_loop(*s); });
  }
}

void ThreadedBus::set_fault_plan(FaultPlan plan) {
  {
    MutexLock lock(lifecycle_mu_);
    if (running_) throw std::logic_error("ThreadedBus: set_fault_plan after start");
  }
  MutexLock lock(fault_mu_);
  faults_ = FaultInjector(std::move(plan));
}

NetStats ThreadedBus::stats() const {
  MutexLock lock(fault_mu_);
  return stats_;
}

void ThreadedBus::post_message(NodeId to, NodeId from, std::vector<std::uint8_t> bytes,
                               std::uint64_t parent_span) {
  if (to >= slots_.size()) return;  // unknown destination: drop (async model)
  auto now = static_cast<Time>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
  auto trace_net = [&](obs::EventKind kind, NodeId node, NodeId peer, std::uint64_t span,
                       std::uint64_t parent) {
    if (trace_ == nullptr) return;
    obs::TraceEvent ev;
    ev.ts = now;
    ev.node = node;
    ev.kind = kind;
    ev.peer = peer;
    ev.count = bytes.size();
    ev.span = span;
    ev.parent = parent;
    trace_->record(ev);
  };
  const std::uint64_t send_span = mint_span();
  {
    MutexLock lock(fault_mu_);
    ++stats_.messages_sent;
    stats_.bytes_sent += bytes.size();
    trace_net(obs::EventKind::kMsgSend, from, to, send_span, parent_span);
    if (faults_.active()) {
      switch (faults_.apply(from, to, now, bytes, fault_rng_)) {
        case FaultInjector::Fate::kDrop:
          ++stats_.messages_dropped;
          trace_net(obs::EventKind::kMsgDrop, from, to, mint_span(), send_span);
          return;
        case FaultInjector::Fate::kCorrupt:
          ++stats_.messages_corrupted;
          trace_net(obs::EventKind::kMsgCorrupt, from, to, mint_span(), send_span);
          break;
        case FaultInjector::Fate::kDeliver:
          break;
      }
    }
  }
  const std::size_t delivered_bytes = bytes.size();
  // The kMsgRecv span is minted here (post time) and carried in the inbox
  // entry so the receiving slot's handler inherits it as its ambient span.
  const std::uint64_t recv_span = mint_span();
  Slot& slot = *slots_[to];
  {
    MutexLock lock(slot.mu);
    if (slot.stopping) return;
    slot.inbox.push_back({from, std::move(bytes), recv_span});
    slot.cv.notify_all();
  }
  if (trace_ != nullptr) {
    obs::TraceEvent ev;
    ev.ts = now;
    ev.node = to;
    ev.kind = obs::EventKind::kMsgRecv;
    ev.peer = from;
    ev.count = delivered_bytes;
    ev.span = recv_span;
    ev.parent = send_span;
    trace_->record(ev);
  }
  MutexLock lock(fault_mu_);
  ++stats_.messages_delivered;
}

void ThreadedBus::deliver_loop(Slot& slot) {
  BusContext ctx(*this, slot);
  slot.node->on_start(ctx);
  {
    MutexLock lock(slot.mu);
    slot.started = true;
  }
  for (;;) {
    std::vector<Slot::Incoming> batch;
    std::vector<TimerEntry> due_timers;
    {
      MutexLock lock(slot.mu);
      while (!slot.stopping && slot.inbox.empty()) {
        auto deadline = std::chrono::steady_clock::time_point::max();
        for (const TimerEntry& t : slot.timers) deadline = std::min(deadline, t.due);
        if (deadline == std::chrono::steady_clock::time_point::max()) {
          slot.cv.wait(slot.mu);
        } else if (slot.cv.wait_until(slot.mu, deadline) == std::cv_status::timeout) {
          break;
        }
      }
      if (slot.stopping) return;
      batch.swap(slot.inbox);
      auto now = std::chrono::steady_clock::now();
      auto split = std::partition(slot.timers.begin(), slot.timers.end(),
                                  [&](const TimerEntry& t) { return t.due > now; });
      for (auto it = split; it != slot.timers.end(); ++it) due_timers.push_back(*it);
      slot.timers.erase(split, slot.timers.end());
    }
    for (const TimerEntry& t : due_timers) {
      slot.current_span = t.span;  // restore the arming handler's span
      slot.node->on_timer(ctx, t.token);
      slot.current_span = 0;
    }
    for (Slot::Incoming& msg : batch) {
      slot.current_span = msg.span;  // the kMsgRecv span minted at post time
      slot.node->on_message(ctx, msg.from, msg.bytes);
      slot.current_span = 0;
    }
  }
}

bool ThreadedBus::run_until(const std::function<bool()>& pred, std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

void ThreadedBus::stop() {
  // lifecycle_mu_ serializes concurrent stop() calls (e.g. an explicit
  // stop() racing the destructor's): the second caller sees running_ ==
  // false and returns before touching the joined threads. Node threads
  // never take lifecycle_mu_, so joining while holding it cannot deadlock.
  MutexLock lock(lifecycle_mu_);
  if (!running_) return;
  stopped_ = true;
  for (auto& slot : slots_) {
    MutexLock slot_lock(slot->mu);
    slot->stopping = true;
    slot->cv.notify_all();
  }
  for (auto& slot : slots_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  running_ = false;
}

}  // namespace dblind::net
