// Deterministic discrete-event simulator for asynchronous message passing.
//
// The paper's protocols assume the Asynchronous System Model (§2): no bound
// on message delay or execution speed. A discrete-event simulator makes that
// model concrete AND reproducible: delays come from a seeded adversarial
// DelayPolicy, so a run is a pure function of (topology, protocol, seed).
// Nodes never see a clock — only message deliveries and local timer events
// (timers model local timeouts such as the delayed-backup-coordinator
// optimization of §4.1, which affect liveness decisions, never safety).
//
// The simulator also keeps per-run accounting (messages, bytes, virtual
// latency) which the bench harness reports.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <span>
#include <vector>

#include "mpz/random.hpp"

namespace dblind::net {

using NodeId = std::uint32_t;
using Time = std::uint64_t;  // virtual microseconds

class Simulator;

// A node's handle to the network; valid only inside event callbacks.
// Abstract so the same Node code runs on the deterministic simulator and on
// real transports (e.g. net::ThreadedBus).
class Context {
 public:
  virtual ~Context() = default;

  virtual void send(NodeId to, std::vector<std::uint8_t> bytes) = 0;
  // Schedules a local timer; `token` is echoed to on_timer.
  virtual void set_timer(Time delay, std::uint64_t token) = 0;
  [[nodiscard]] virtual Time now() const = 0;
  [[nodiscard]] virtual NodeId self() const = 0;
  // Per-node deterministic randomness (forked from the transport seed).
  [[nodiscard]] virtual mpz::Prng& rng() = 0;
};

// Context implementation bound to the discrete-event Simulator.
class SimContext final : public Context {
 public:
  SimContext(Simulator& sim, NodeId self) : sim_(sim), self_(self) {}

  void send(NodeId to, std::vector<std::uint8_t> bytes) override;
  void set_timer(Time delay, std::uint64_t token) override;
  [[nodiscard]] Time now() const override;
  [[nodiscard]] NodeId self() const override { return self_; }
  [[nodiscard]] mpz::Prng& rng() override;

 private:
  Simulator& sim_;
  NodeId self_;
};

class Node {
 public:
  virtual ~Node() = default;
  // Called once when the simulation starts.
  virtual void on_start(Context& ctx) { (void)ctx; }
  virtual void on_message(Context& ctx, NodeId from, std::span<const std::uint8_t> bytes) = 0;
  virtual void on_timer(Context& ctx, std::uint64_t token) { (void)token; (void)ctx; }
};

// Chooses the delivery delay of each message — this IS the adversary's
// control over asynchrony. Implementations must be deterministic given the
// Prng they draw from.
class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;
  virtual Time delay(NodeId from, NodeId to, std::size_t bytes, mpz::Prng& prng) = 0;
};

// Uniform random delay in [min, max].
class UniformDelay final : public DelayPolicy {
 public:
  UniformDelay(Time min, Time max) : min_(min), max_(max) {}
  Time delay(NodeId, NodeId, std::size_t, mpz::Prng& prng) override {
    return min_ + prng.uniform_u64(max_ - min_ + 1);
  }

 private:
  Time min_, max_;
};

// Uniform base delay, but traffic touching `slow` nodes is stretched by
// `factor` — models a denial-of-service adversary targeting specific servers
// (e.g. the designated coordinator).
class TargetedSlowdown final : public DelayPolicy {
 public:
  TargetedSlowdown(Time min, Time max, std::set<NodeId> slow, Time factor)
      : base_(min, max), slow_(std::move(slow)), factor_(factor) {}
  Time delay(NodeId from, NodeId to, std::size_t bytes, mpz::Prng& prng) override {
    Time d = base_.delay(from, to, bytes, prng);
    if (slow_.contains(from) || slow_.contains(to)) d *= factor_;
    return d;
  }

 private:
  UniformDelay base_;
  std::set<NodeId> slow_;
  Time factor_;
};

// Per-run accounting.
struct NetStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_sent = 0;
  Time end_time = 0;
};

class Simulator {
 public:
  // `seed` drives every random choice (delays and node RNGs).
  explicit Simulator(std::uint64_t seed, std::unique_ptr<DelayPolicy> delays);

  // Adds a node; returns its id (sequential from 0).
  NodeId add_node(std::unique_ptr<Node> node);
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  // Crash-stop the node at virtual time `when` (immediately if in the past):
  // it receives no further events and its sends are dropped.
  void crash_at(NodeId id, Time when);

  // Adversarial channel: each message is additionally delivered a second
  // time (with an independent delay) with probability `percent`/100. The
  // asynchronous model permits duplication, so protocols must be idempotent.
  void set_duplication_percent(unsigned percent) { duplication_percent_ = percent; }
  [[nodiscard]] bool crashed(NodeId id) const { return crashed_.contains(id); }

  // Runs until the event queue drains or `max_events` deliveries occurred.
  // Returns accumulated stats. Calling run again continues the simulation.
  NetStats run(std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max());

  // Runs until `pred()` becomes true (checked after every delivery) or the
  // queue drains. Returns true iff the predicate held.
  bool run_until(const std::function<bool()>& pred,
                 std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max());

  [[nodiscard]] const NetStats& stats() const { return stats_; }
  [[nodiscard]] Time now() const { return now_; }

  // Direct access for test assertions.
  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id).node; }

 private:
  friend class SimContext;

  struct Event {
    Time at;
    std::uint64_t seq;  // tie-break for determinism
    enum class Kind : std::uint8_t { kStart, kMessage, kTimer, kCrash } kind;
    NodeId target;
    NodeId from = 0;
    std::vector<std::uint8_t> bytes;
    std::uint64_t token = 0;

    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  struct Slot {
    std::unique_ptr<Node> node;
    std::unique_ptr<mpz::Prng> rng;
    bool started = false;
  };

  void enqueue(Event e);
  void send_from(NodeId from, NodeId to, std::vector<std::uint8_t> bytes);
  void timer_from(NodeId node, Time delay, std::uint64_t token);

  std::vector<Slot> nodes_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::set<NodeId> crashed_;
  std::unique_ptr<DelayPolicy> delays_;
  mpz::Prng net_rng_;
  NetStats stats_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  unsigned duplication_percent_ = 0;
};

}  // namespace dblind::net
