// Deterministic discrete-event simulator for asynchronous message passing.
//
// The paper's protocols assume the Asynchronous System Model (§2): no bound
// on message delay or execution speed. A discrete-event simulator makes that
// model concrete AND reproducible: delays come from a seeded adversarial
// DelayPolicy, so a run is a pure function of (topology, protocol, seed).
// Nodes never see a clock — only message deliveries and local timer events
// (timers model local timeouts such as the delayed-backup-coordinator
// optimization of §4.1, which affect liveness decisions, never safety).
//
// The simulator also keeps per-run accounting (messages, bytes, virtual
// latency) which the bench harness reports.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <span>
#include <vector>

#include "mpz/random.hpp"
#include "net/fault.hpp"
#include "obs/trace.hpp"

namespace dblind::net {

using NodeId = std::uint32_t;
using Time = std::uint64_t;  // virtual microseconds

class Simulator;

// A node's handle to the network; valid only inside event callbacks.
// Abstract so the same Node code runs on the deterministic simulator and on
// real transports (e.g. net::ThreadedBus).
class Context {
 public:
  virtual ~Context() = default;

  virtual void send(NodeId to, std::vector<std::uint8_t> bytes) = 0;
  // Schedules a local timer; `token` is echoed to on_timer.
  virtual void set_timer(Time delay, std::uint64_t token) = 0;
  [[nodiscard]] virtual Time now() const = 0;
  [[nodiscard]] virtual NodeId self() const = 0;
  // Per-node deterministic randomness (forked from the transport seed).
  [[nodiscard]] virtual mpz::Prng& rng() = 0;

  // Causal span context (PR 9). The transport mints run-unique span ids and
  // tracks the *current* span — the span of the trace event that caused the
  // code currently executing (the kMsgRecv span inside on_message, the
  // arming handler's span inside on_timer, the last event emitted by this
  // handler otherwise). Sends capture the current span as the message's
  // causal parent; protocol-level emitters chain through set_current_span.
  // The defaults are inert (id 0 = "absent"), so transports without tracing
  // and test doubles keep the v1 zero-overhead behavior unchanged.
  [[nodiscard]] virtual std::uint64_t current_span() const { return 0; }
  virtual void set_current_span(std::uint64_t span) { (void)span; }
  // Returns a fresh run-unique nonzero span id (0 when tracing is off).
  [[nodiscard]] virtual std::uint64_t mint_span() { return 0; }
};

// Context implementation bound to the discrete-event Simulator.
class SimContext final : public Context {
 public:
  SimContext(Simulator& sim, NodeId self) : sim_(sim), self_(self) {}

  void send(NodeId to, std::vector<std::uint8_t> bytes) override;
  void set_timer(Time delay, std::uint64_t token) override;
  [[nodiscard]] Time now() const override;
  [[nodiscard]] NodeId self() const override { return self_; }
  [[nodiscard]] mpz::Prng& rng() override;
  [[nodiscard]] std::uint64_t current_span() const override;
  void set_current_span(std::uint64_t span) override;
  [[nodiscard]] std::uint64_t mint_span() override;

 private:
  Simulator& sim_;
  NodeId self_;
};

class Node {
 public:
  virtual ~Node() = default;
  // Called once when the simulation starts (and again after a restart).
  virtual void on_start(Context& ctx) { (void)ctx; }
  virtual void on_message(Context& ctx, NodeId from, std::span<const std::uint8_t> bytes) = 0;
  virtual void on_timer(Context& ctx, std::uint64_t token) { (void)token; (void)ctx; }
  // Crash-recovery hooks (Simulator::restart_at). snapshot() returns the
  // node's DURABLE state — what survives a crash; it is taken at crash time.
  // restore() replaces the node's entire state with a snapshot, dropping
  // everything volatile, and must tolerate arbitrary bytes (treat an
  // undecodable snapshot as empty — never throw). The defaults model a node
  // with no durable storage.
  [[nodiscard]] virtual std::vector<std::uint8_t> snapshot() const { return {}; }
  virtual void restore(std::span<const std::uint8_t> snapshot) { (void)snapshot; }
};

// Chooses the delivery delay of each message — this IS the adversary's
// control over asynchrony. Implementations must be deterministic given the
// Prng they draw from.
class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;
  virtual Time delay(NodeId from, NodeId to, std::size_t bytes, mpz::Prng& prng) = 0;
};

// Uniform random delay in [min, max].
class UniformDelay final : public DelayPolicy {
 public:
  UniformDelay(Time min, Time max) : min_(min), max_(max) {}
  Time delay(NodeId, NodeId, std::size_t, mpz::Prng& prng) override {
    return min_ + prng.uniform_u64(max_ - min_ + 1);
  }

 private:
  Time min_, max_;
};

// Uniform base delay, but traffic touching `slow` nodes is stretched by
// `factor` — models a denial-of-service adversary targeting specific servers
// (e.g. the designated coordinator).
class TargetedSlowdown final : public DelayPolicy {
 public:
  TargetedSlowdown(Time min, Time max, std::set<NodeId> slow, Time factor)
      : base_(min, max), slow_(std::move(slow)), factor_(factor) {}
  Time delay(NodeId from, NodeId to, std::size_t bytes, mpz::Prng& prng) override {
    Time d = base_.delay(from, to, bytes, prng);
    if (slow_.contains(from) || slow_.contains(to)) d *= factor_;
    return d;
  }

 private:
  UniformDelay base_;
  std::set<NodeId> slow_;
  Time factor_;
};

// Per-run accounting.
struct NetStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;     // FaultPlan drops (loss + partitions)
  std::uint64_t messages_duplicated = 0;  // extra copies injected
  std::uint64_t messages_corrupted = 0;   // bit-flipped copies (still delivered)
  std::uint64_t bytes_sent = 0;
  Time end_time = 0;
};

class Simulator {
 public:
  // `seed` drives every random choice (delays and node RNGs).
  explicit Simulator(std::uint64_t seed, std::unique_ptr<DelayPolicy> delays);

  // Adds a node; returns its id (sequential from 0).
  NodeId add_node(std::unique_ptr<Node> node);
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  // Crash-stop the node at virtual time `when` (immediately if in the past):
  // it receives no further events and its sends are dropped. A crash at time
  // T wins over any other event scheduled at T — in particular crash_at(id, 0)
  // prevents the node's on_start from ever running.
  void crash_at(NodeId id, Time when);

  // Restart a node crashed via crash_at: at `when` its durable snapshot
  // (taken at crash time via Node::snapshot) is restored, on_start runs
  // again, and the node rejoins the network. Timers set before the crash
  // never fire; messages already in flight can still be delivered afterwards
  // (the asynchronous model permits arbitrary delay). A restart with no
  // preceding crash is a no-op.
  void restart_at(NodeId id, Time when);

  // Adversarial channel: each message is additionally delivered a second
  // time (with an independent delay) with probability `percent`/100. The
  // asynchronous model permits duplication, so protocols must be idempotent.
  void set_duplication_percent(unsigned percent) { duplication_percent_ = percent; }
  // Fault injection: applies `plan` to every message copy sent from now on.
  // Fault decisions draw from a dedicated RNG stream, so enabling a plan
  // does not perturb delay/duplication draws.
  void set_fault_plan(FaultPlan plan) { faults_ = FaultInjector(std::move(plan)); }
  [[nodiscard]] bool crashed(NodeId id) const { return crashed_.contains(id); }

  // Observability: network-level events (send/recv/drop/dup/corrupt,
  // crash/restart) are reported to `recorder` with virtual timestamps.
  // Non-owning; nullptr (the default) records nothing and changes nothing —
  // the simulation schedule is identical either way.
  void set_trace(obs::TraceRecorder* recorder) { trace_ = recorder; }

  // Runs until the event queue drains or `max_events` deliveries occurred.
  // Returns accumulated stats. Calling run again continues the simulation.
  NetStats run(std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max());

  // Runs until `pred()` becomes true (checked after every delivery) or the
  // queue drains. Returns true iff the predicate held.
  bool run_until(const std::function<bool()>& pred,
                 std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max());

  [[nodiscard]] const NetStats& stats() const { return stats_; }
  [[nodiscard]] Time now() const { return now_; }

  // Direct access for test assertions.
  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id).node; }

 private:
  friend class SimContext;

  struct Event {
    Time at;
    std::uint64_t seq;  // tie-break for determinism
    enum class Kind : std::uint8_t { kStart, kMessage, kTimer, kCrash, kRestart } kind;
    NodeId target;
    NodeId from = 0;
    std::vector<std::uint8_t> bytes;
    std::uint64_t token = 0;
    // Crashes sort before same-time events (see crash_at); everything else
    // keeps seq order.
    std::uint8_t prio = 1;
    // Timer events fire only if the target's incarnation still matches (a
    // crash invalidates all timers set before it).
    std::uint64_t incarnation = 0;
    // Causal span carried by the event: for kMessage the span minted at
    // send time (becomes the kMsgRecv event's parent); for kTimer the
    // current span captured when the timer was armed (restored as the
    // handler's current span at fire time — timers do not mint, so an
    // unfired timer never creates an orphan parent).
    std::uint64_t span = 0;

    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      if (prio != other.prio) return prio > other.prio;
      return seq > other.seq;
    }
  };

  struct Slot {
    std::unique_ptr<Node> node;
    std::unique_ptr<mpz::Prng> rng;
    bool started = false;
    std::uint64_t incarnation = 0;
    std::vector<std::uint8_t> durable;  // snapshot taken at crash time
  };

  void enqueue(Event e);
  void send_from(NodeId from, NodeId to, std::vector<std::uint8_t> bytes);
  void deliver_copy(NodeId from, NodeId to, std::vector<std::uint8_t> bytes, Time delay,
                    std::uint64_t send_span);
  void timer_from(NodeId node, Time delay, std::uint64_t token);

  std::vector<Slot> nodes_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::set<NodeId> crashed_;
  std::unique_ptr<DelayPolicy> delays_;
  mpz::Prng net_rng_;
  mpz::Prng fault_rng_;  // dedicated stream: faults never perturb delays
  FaultInjector faults_;
  NetStats stats_;
  obs::TraceRecorder* trace_ = nullptr;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  unsigned duplication_percent_ = 0;
  // Span bookkeeping (PR 9). Single-threaded dispatch, so one ambient
  // current-span suffices; 0 whenever tracing is off or no handler runs.
  std::uint64_t next_span_ = 0;
  std::uint64_t current_span_ = 0;
};

}  // namespace dblind::net
