#include "net/sim.hpp"

#include <stdexcept>
#include <string>

namespace dblind::net {

namespace {

// Network-level trace event; `count` carries the payload size in bytes.
obs::TraceEvent net_event(Time at, NodeId node, obs::EventKind kind, NodeId peer,
                          std::size_t bytes) {
  obs::TraceEvent ev;
  ev.ts = at;
  ev.node = node;
  ev.kind = kind;
  ev.peer = peer;
  ev.count = bytes;
  return ev;
}

}  // namespace

void SimContext::send(NodeId to, std::vector<std::uint8_t> bytes) {
  sim_.send_from(self_, to, std::move(bytes));
}

void SimContext::set_timer(Time delay, std::uint64_t token) {
  sim_.timer_from(self_, delay, token);
}

Time SimContext::now() const { return sim_.now(); }

mpz::Prng& SimContext::rng() { return *sim_.nodes_.at(self_).rng; }

std::uint64_t SimContext::current_span() const { return sim_.current_span_; }

void SimContext::set_current_span(std::uint64_t span) { sim_.current_span_ = span; }

std::uint64_t SimContext::mint_span() {
  return sim_.trace_ != nullptr ? ++sim_.next_span_ : 0;
}

Simulator::Simulator(std::uint64_t seed, std::unique_ptr<DelayPolicy> delays)
    : delays_(std::move(delays)), net_rng_(seed), fault_rng_(seed ^ 0xFA17C0DEull) {
  if (!delays_) throw std::invalid_argument("Simulator: null delay policy");
}

NodeId Simulator::add_node(std::unique_ptr<Node> node) {
  if (!node) throw std::invalid_argument("Simulator::add_node: null node");
  NodeId id = static_cast<NodeId>(nodes_.size());
  Slot slot;
  slot.node = std::move(node);
  slot.rng = std::make_unique<mpz::Prng>(net_rng_.fork("node/" + std::to_string(id)));
  nodes_.push_back(std::move(slot));
  enqueue({now_, seq_++, Event::Kind::kStart, id, 0, {}, 0});
  return id;
}

void Simulator::crash_at(NodeId id, Time when) {
  // prio 0: a crash at time T is processed before any same-time event, so a
  // crash scheduled "in the past" (or at 0) can never race the node's
  // on_start or a same-instant delivery.
  enqueue({std::max(when, now_), seq_++, Event::Kind::kCrash, id, 0, {}, 0, /*prio=*/0});
}

void Simulator::restart_at(NodeId id, Time when) {
  enqueue({std::max(when, now_), seq_++, Event::Kind::kRestart, id, 0, {}, 0});
}

void Simulator::enqueue(Event e) { queue_.push(std::move(e)); }

void Simulator::send_from(NodeId from, NodeId to, std::vector<std::uint8_t> bytes) {
  if (to >= nodes_.size()) throw std::out_of_range("Simulator: send to unknown node");
  if (crashed_.contains(from)) return;  // a crashed sender emits nothing
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes.size();
  std::uint64_t send_span = 0;
  if (trace_ != nullptr) {
    send_span = ++next_span_;
    auto ev = net_event(now_, from, obs::EventKind::kMsgSend, to, bytes.size());
    ev.span = send_span;
    ev.parent = current_span_;
    trace_->record(ev);
  }
  Time d = delays_->delay(from, to, bytes.size(), net_rng_);
  if (duplication_percent_ != 0 && net_rng_.uniform_u64(100) < duplication_percent_) {
    Time d2 = delays_->delay(from, to, bytes.size(), net_rng_);
    ++stats_.messages_duplicated;
    if (trace_ != nullptr) {
      auto ev = net_event(now_, from, obs::EventKind::kMsgDup, to, bytes.size());
      ev.span = ++next_span_;
      ev.parent = send_span;
      trace_->record(ev);
    }
    deliver_copy(from, to, bytes, d2, send_span);
  }
  deliver_copy(from, to, std::move(bytes), d, send_span);
}

// Each copy (original or duplicate) meets the fault plan independently — a
// duplicated message can lose one copy and corrupt the other.
void Simulator::deliver_copy(NodeId from, NodeId to, std::vector<std::uint8_t> bytes,
                             Time delay, std::uint64_t send_span) {
  if (faults_.active()) {
    switch (faults_.apply(from, to, now_, bytes, fault_rng_)) {
      case FaultInjector::Fate::kDrop:
        ++stats_.messages_dropped;
        if (trace_ != nullptr) {
          auto ev = net_event(now_, from, obs::EventKind::kMsgDrop, to, bytes.size());
          ev.span = ++next_span_;
          ev.parent = send_span;
          trace_->record(ev);
        }
        return;
      case FaultInjector::Fate::kCorrupt:
        ++stats_.messages_corrupted;
        if (trace_ != nullptr) {
          auto ev = net_event(now_, from, obs::EventKind::kMsgCorrupt, to, bytes.size());
          ev.span = ++next_span_;
          ev.parent = send_span;
          trace_->record(ev);
        }
        break;
      case FaultInjector::Fate::kDeliver:
        break;
    }
  }
  enqueue({now_ + delay, seq_++, Event::Kind::kMessage, to, from, std::move(bytes), 0,
           /*prio=*/1, /*incarnation=*/0, send_span});
}

void Simulator::timer_from(NodeId node, Time delay, std::uint64_t token) {
  // The timer captures the arming handler's current span; at fire time it
  // is restored as the handler's ambient span (no new span is minted, so an
  // unfired timer never leaves an orphan parent in the trace).
  enqueue({now_ + delay, seq_++, Event::Kind::kTimer, node, 0, {}, token, /*prio=*/1,
           nodes_.at(node).incarnation, current_span_});
}

NetStats Simulator::run(std::uint64_t max_events) {
  run_until([] { return false; }, max_events);
  return stats_;
}

bool Simulator::run_until(const std::function<bool()>& pred, std::uint64_t max_events) {
  if (pred()) return true;
  std::uint64_t events = 0;
  while (!queue_.empty() && events < max_events) {
    Event e = queue_.top();
    queue_.pop();
    now_ = e.at;
    stats_.end_time = now_;
    ++events;

    if (e.kind == Event::Kind::kCrash) {
      if (crashed_.insert(e.target).second) {
        Slot& slot = nodes_.at(e.target);
        slot.durable = slot.node->snapshot();
        ++slot.incarnation;  // timers set before the crash never fire
        if (trace_ != nullptr) {
          auto ev = net_event(now_, e.target, obs::EventKind::kCrash, 0, 0);
          ev.span = ++next_span_;
          trace_->record(ev);
        }
      }
      continue;
    }
    if (e.kind == Event::Kind::kRestart) {
      if (crashed_.erase(e.target) != 0) {
        Slot& slot = nodes_.at(e.target);
        std::uint64_t restart_span = 0;
        if (trace_ != nullptr) {
          restart_span = ++next_span_;
          auto ev = net_event(now_, e.target, obs::EventKind::kRestart, 0, 0);
          ev.span = restart_span;
          trace_->record(ev);
        }
        slot.node->restore(slot.durable);
        SimContext ctx(*this, e.target);
        current_span_ = restart_span;  // recovery work descends from kRestart
        slot.node->on_start(ctx);
        current_span_ = 0;
        if (pred()) return true;
      }
      continue;
    }
    if (crashed_.contains(e.target)) continue;

    Slot& slot = nodes_.at(e.target);
    SimContext ctx(*this, e.target);
    switch (e.kind) {
      case Event::Kind::kStart:
        slot.started = true;
        current_span_ = 0;  // a root: nothing caused the initial start
        slot.node->on_start(ctx);
        break;
      case Event::Kind::kMessage: {
        ++stats_.messages_delivered;
        std::uint64_t recv_span = 0;
        if (trace_ != nullptr) {
          recv_span = ++next_span_;
          auto ev =
              net_event(now_, e.target, obs::EventKind::kMsgRecv, e.from, e.bytes.size());
          ev.span = recv_span;
          ev.parent = e.span;  // the matching kMsgSend
          trace_->record(ev);
        }
        current_span_ = recv_span;
        slot.node->on_message(ctx, e.from, e.bytes);
        break;
      }
      case Event::Kind::kTimer:
        if (e.incarnation == slot.incarnation) {
          current_span_ = e.span;  // restore the arming handler's span
          slot.node->on_timer(ctx, e.token);
        }
        break;
      case Event::Kind::kCrash:
      case Event::Kind::kRestart:
        break;  // handled above
    }
    current_span_ = 0;
    if (pred()) return true;
  }
  return pred();
}

}  // namespace dblind::net
