// Composable fault injection ("chaos" layer) shared by both transports.
//
// The paper's Asynchronous System Model (§2) permits arbitrary message loss,
// duplication and delay; safety must hold under all of them, and liveness
// only under eventual delivery. A FaultPlan makes those adversities concrete
// and reproducible: drop probabilities (global or per directed link),
// scheduled partitions with heal times, and payload bit-flip corruption.
// The same plan type drives the deterministic net::Simulator and the
// real-thread net::ThreadedBus, so a chaos schedule exercised by the seed
// sweep can be replayed against real interleavings.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "mpz/random.hpp"

namespace dblind::net {

// Duplicated from sim.hpp (identical aliases) so this header stays
// standalone; sim.hpp and threaded_bus.hpp both include it.
using NodeId = std::uint32_t;
using Time = std::uint64_t;  // microseconds (virtual or since-epoch)

struct FaultPlan {
  // Probability (percent) that any given message copy is dropped.
  unsigned drop_percent = 0;
  // Per-directed-link overrides of drop_percent, keyed (from, to).
  std::map<std::pair<NodeId, NodeId>, unsigned> link_drop_percent;
  // Probability (percent) that a delivered copy has one random bit flipped.
  // Corrupted copies are still delivered — receivers must treat them as
  // garbage, indistinguishable from an attacker's bogus message.
  unsigned corrupt_percent = 0;
  // While now ∈ [start, heal), messages crossing the island boundary (in
  // either direction) are dropped. Multiple overlapping partitions compose.
  struct Partition {
    Time start = 0;
    Time heal = 0;
    std::set<NodeId> island;
  };
  std::vector<Partition> partitions;
  // Permanent departures (membership churn): from `Time` on, every message
  // to or from the node is dropped. Models a server that leaves the roster
  // for good — unlike a crash it never restarts, so liveness must come from
  // reconfiguring it out rather than waiting it out.
  std::map<NodeId, Time> departures;

  [[nodiscard]] bool empty() const {
    return drop_percent == 0 && link_drop_percent.empty() && corrupt_percent == 0 &&
           partitions.empty() && departures.empty();
  }
};

// Applies a FaultPlan to individual message copies. Decisions draw from the
// Prng the transport passes in, so runs stay deterministic per seed.
class FaultInjector {
 public:
  enum class Fate : std::uint8_t { kDeliver, kDrop, kCorrupt };

  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  [[nodiscard]] bool active() const { return !plan_.empty(); }
  [[nodiscard]] bool partitioned(NodeId from, NodeId to, Time now) const;

  // Decides the fate of one message copy sent at `now`. kCorrupt flips one
  // uniformly-chosen bit of `bytes` in place; the copy is still delivered.
  Fate apply(NodeId from, NodeId to, Time now, std::vector<std::uint8_t>& bytes,
             mpz::Prng& prng);

 private:
  FaultPlan plan_;
};

}  // namespace dblind::net
