# Sanitizer build modes, applied repo-wide.
#
# DBLIND_SANITIZE selects the sanitizer set compiled into every target:
#
#   off                  (default) no instrumentation; compile flags are
#                        byte-identical to a plain build.
#   address;undefined    ASan + UBSan ("asan" preset). Catches heap/stack
#                        corruption, leaks, and C++ UB (bad shifts, signed
#                        overflow, misaligned access) in the bignum layer.
#   thread               TSan ("tsan" preset). Catches data races in
#                        net::ThreadedBus / core::ProtocolServer paths.
#
# ASan and TSan are mutually exclusive at the runtime level, so the two sets
# need separate build trees — that is what the CMake presets provide.
# Runtime tuning (suppressions, halt-on-error) lives in tools/sanitize/ and
# is injected through the matching ctest presets' environment.

set(DBLIND_SANITIZE "off" CACHE STRING
    "Sanitizer set for all targets: off | address;undefined | thread")
set_property(CACHE DBLIND_SANITIZE PROPERTY STRINGS off "address;undefined" thread)

if(NOT "${DBLIND_SANITIZE}" STREQUAL "off" AND NOT "${DBLIND_SANITIZE}" STREQUAL "")
  # The cache value is a CMake list ("address;undefined"); -fsanitize= wants
  # a comma-separated group.
  string(REPLACE ";" "," _dblind_san_csv "${DBLIND_SANITIZE}")

  set(_dblind_san_flags -fsanitize=${_dblind_san_csv} -fno-omit-frame-pointer)
  if("undefined" IN_LIST DBLIND_SANITIZE)
    # Make every UBSan finding fatal so ctest fails on the first report
    # instead of scrolling diagnostics past the harness.
    list(APPEND _dblind_san_flags -fno-sanitize-recover=all)
  endif()

  add_compile_options(${_dblind_san_flags})
  add_link_options(-fsanitize=${_dblind_san_csv})

  # GTest's death tests and libstdc++ play fine with both sets; the only
  # accommodation threads need is unwind tables for readable reports.
  if("thread" IN_LIST DBLIND_SANITIZE)
    add_compile_options(-funwind-tables)
  endif()

  message(STATUS "dblind: sanitizers enabled: ${_dblind_san_csv}")
endif()
